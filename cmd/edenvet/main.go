// Command edenvet runs Eden's custom invariant analyzers over the
// module: it loads every package under the module root, type-checks
// it with only the standard library, applies the suite in
// internal/analysis, honors //edenvet:ignore suppressions, and exits
// non-zero if any unsuppressed diagnostic remains.
//
// Usage:
//
//	edenvet            # analyze the module containing the cwd
//	edenvet ./...      # same
//	edenvet <dir>      # analyze the module rooted at <dir>
//	edenvet -q ./...   # suppress the summary, print findings only
//
// Diagnostics are printed as file:line: analyzer: message.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"eden/internal/analysis"
)

func main() {
	quiet := flag.Bool("q", false, "print findings only, no summary")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: edenvet [-q] [./... | module-dir]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args(), *quiet))
}

func run(args []string, quiet bool) int {
	root := "."
	if len(args) > 0 && args[0] != "./..." && args[0] != "..." {
		root = strings.TrimSuffix(args[0], "/...")
	}
	root, err := findModuleRoot(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edenvet: %v\n", err)
		return 2
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edenvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "edenvet: %v\n", err)
		return 2
	}

	var active, suppressed []analysis.Diagnostic
	var unused []analysis.Suppression
	perAnalyzer := make(map[string]int)
	for _, pkg := range pkgs {
		diags := analysis.Run(pkg, analysis.All())
		sups, bad := analysis.CollectSuppressions(pkg)
		a, s, u := analysis.ApplySuppressions(diags, sups)
		active = append(active, a...)
		active = append(active, bad...)
		suppressed = append(suppressed, s...)
		unused = append(unused, u...)
	}

	for _, d := range active {
		fmt.Println(render(root, d))
		perAnalyzer[d.Analyzer]++
	}

	if !quiet {
		if len(suppressed) > 0 {
			fmt.Printf("\n%d finding(s) suppressed by //edenvet:ignore:\n", len(suppressed))
			for _, d := range suppressed {
				fmt.Printf("  %s\n", render(root, d))
			}
		}
		if len(unused) > 0 {
			fmt.Printf("\n%d suppression(s) matched nothing (stale?):\n", len(unused))
			for _, s := range unused {
				fmt.Printf("  %s:%d: //edenvet:ignore %s %s\n", relPath(root, s.Pos.Filename), s.Pos.Line, s.Analyzer, s.Reason)
			}
		}
		fmt.Printf("\nedenvet: %d package(s), %d finding(s), %d suppressed\n",
			len(pkgs), len(active), len(suppressed))
		for _, a := range analysis.All() {
			if n := perAnalyzer[a.Name]; n > 0 {
				fmt.Printf("  %-12s %d\n", a.Name, n)
			}
		}
	}

	if len(active) > 0 {
		return 1
	}
	return 0
}

func render(root string, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d: %s: %s", relPath(root, d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// findModuleRoot walks upward from dir to the directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		d = parent
	}
}
