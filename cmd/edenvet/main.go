// Command edenvet runs Eden's custom invariant analyzers over the
// module: it loads every package under the module root, type-checks
// it with only the standard library, applies the suite in
// internal/analysis, honors //edenvet:ignore suppressions, and exits
// non-zero if any unsuppressed diagnostic remains.
//
// Usage:
//
//	edenvet            # analyze the module containing the cwd
//	edenvet ./...      # same
//	edenvet <dir>      # analyze the module rooted at <dir>
//	edenvet -q ./...   # suppress the summary, print findings only
//	edenvet -json ./...    # machine-readable report on stdout
//	edenvet -gha ./...     # GitHub Actions ::error annotations
//	edenvet -strict ./...  # stale suppressions are failures too
//
// Diagnostics are printed as file:line: analyzer: message.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"eden/internal/analysis"
)

func main() {
	quiet := flag.Bool("q", false, "print findings only, no summary")
	jsonOut := flag.Bool("json", false, "emit a JSON report on stdout instead of text")
	gha := flag.Bool("gha", false, "emit GitHub Actions ::error annotations alongside findings")
	strict := flag.Bool("strict", false, "exit non-zero on stale suppressions, not just findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: edenvet [-q] [-json] [-gha] [-strict] [./... | module-dir]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args(), options{quiet: *quiet, json: *jsonOut, gha: *gha, strict: *strict}))
}

type options struct {
	quiet  bool
	json   bool
	gha    bool
	strict bool
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonSuppression is one //edenvet:ignore in the -json report; stale
// ones carry "stale": true.
type jsonSuppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Stale    bool   `json:"stale,omitempty"`
}

// jsonReport is the -json output: everything the text form prints, in
// one machine-readable document.
type jsonReport struct {
	Packages     int               `json:"packages"`
	Findings     []jsonFinding     `json:"findings"`
	Suppressed   []jsonFinding     `json:"suppressed"`
	Suppressions []jsonSuppression `json:"suppressions"`
}

func run(args []string, opts options) int {
	root := "."
	if len(args) > 0 && args[0] != "./..." && args[0] != "..." {
		root = strings.TrimSuffix(args[0], "/...")
	}
	root, err := findModuleRoot(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edenvet: %v\n", err)
		return 2
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edenvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "edenvet: %v\n", err)
		return 2
	}

	var active, suppressed []analysis.Diagnostic
	var unused []analysis.Suppression
	perAnalyzer := make(map[string]int)
	for _, pkg := range pkgs {
		diags := analysis.Run(pkg, analysis.All())
		sups, bad := analysis.CollectSuppressions(pkg)
		a, s, u := analysis.ApplySuppressions(diags, sups)
		active = append(active, a...)
		active = append(active, bad...)
		suppressed = append(suppressed, s...)
		unused = append(unused, u...)
	}

	if opts.json {
		report := jsonReport{Packages: len(pkgs), Findings: []jsonFinding{}, Suppressed: []jsonFinding{}, Suppressions: []jsonSuppression{}}
		for _, d := range active {
			report.Findings = append(report.Findings, jsonFinding{
				File: relPath(root, d.Pos.Filename), Line: d.Pos.Line,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, d := range suppressed {
			report.Suppressed = append(report.Suppressed, jsonFinding{
				File: relPath(root, d.Pos.Filename), Line: d.Pos.Line,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		staleAt := make(map[string]bool, len(unused))
		for _, s := range unused {
			staleAt[fmt.Sprintf("%s:%d", s.Pos.Filename, s.Pos.Line)] = true
		}
		seen := make(map[string]bool)
		for _, pkg := range pkgs {
			sups, _ := analysis.CollectSuppressions(pkg)
			for _, s := range sups {
				key := fmt.Sprintf("%s:%d:%s", s.Pos.Filename, s.Pos.Line, s.Analyzer)
				if seen[key] {
					continue
				}
				seen[key] = true
				report.Suppressions = append(report.Suppressions, jsonSuppression{
					File: relPath(root, s.Pos.Filename), Line: s.Pos.Line,
					Analyzer: s.Analyzer, Reason: s.Reason,
					Stale: staleAt[fmt.Sprintf("%s:%d", s.Pos.Filename, s.Pos.Line)],
				})
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "edenvet: %v\n", err)
			return 2
		}
		return exitCode(active, unused, opts)
	}

	for _, d := range active {
		fmt.Println(render(root, d))
		perAnalyzer[d.Analyzer]++
		if opts.gha {
			annotate(root, d.Pos.Filename, d.Pos.Line, fmt.Sprintf("%s: %s", d.Analyzer, d.Message))
		}
	}
	if opts.gha && opts.strict {
		for _, s := range unused {
			annotate(root, s.Pos.Filename, s.Pos.Line,
				fmt.Sprintf("stale suppression: //edenvet:ignore %s %s matches nothing", s.Analyzer, s.Reason))
		}
	}

	if !opts.quiet {
		if len(suppressed) > 0 {
			fmt.Printf("\n%d finding(s) suppressed by //edenvet:ignore:\n", len(suppressed))
			for _, d := range suppressed {
				fmt.Printf("  %s\n", render(root, d))
			}
		}
		if len(unused) > 0 {
			fmt.Printf("\n%d suppression(s) matched nothing (stale?):\n", len(unused))
			for _, s := range unused {
				fmt.Printf("  %s:%d: //edenvet:ignore %s %s\n", relPath(root, s.Pos.Filename), s.Pos.Line, s.Analyzer, s.Reason)
			}
		}
		fmt.Printf("\nedenvet: %d package(s), %d finding(s), %d suppressed\n",
			len(pkgs), len(active), len(suppressed))
		for _, a := range analysis.All() {
			if n := perAnalyzer[a.Name]; n > 0 {
				fmt.Printf("  %-14s %d\n", a.Name, n)
			}
		}
	}

	return exitCode(active, unused, opts)
}

// exitCode: findings always fail; stale suppressions fail under
// -strict (a suppression matching nothing is a lie in the source).
func exitCode(active []analysis.Diagnostic, unused []analysis.Suppression, opts options) int {
	if len(active) > 0 {
		return 1
	}
	if opts.strict && len(unused) > 0 {
		return 1
	}
	return 0
}

// annotate prints one GitHub Actions workflow command so the finding
// shows inline on the PR diff. The file path is workspace-relative,
// which is what the annotation machinery expects.
func annotate(root, file string, line int, msg string) {
	fmt.Printf("::error file=%s,line=%d::%s\n", relPath(root, file), line, escapeGHA(msg))
}

// escapeGHA escapes the characters the workflow-command parser treats
// specially in the message portion.
func escapeGHA(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func render(root string, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d: %s: %s", relPath(root, d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// findModuleRoot walks upward from dir to the directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		d = parent
	}
}
