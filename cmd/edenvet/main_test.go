package main

import (
	"encoding/json"
	"testing"

	"eden/internal/analysis"
)

func TestExitCode(t *testing.T) {
	finding := []analysis.Diagnostic{{Analyzer: "capleak"}}
	stale := []analysis.Suppression{{Analyzer: "capleak"}}
	cases := []struct {
		name   string
		active []analysis.Diagnostic
		unused []analysis.Suppression
		opts   options
		want   int
	}{
		{"clean", nil, nil, options{}, 0},
		{"finding fails", finding, nil, options{}, 1},
		{"stale tolerated by default", nil, stale, options{}, 0},
		{"stale fails under strict", nil, stale, options{strict: true}, 1},
		{"finding beats stale", finding, stale, options{strict: true}, 1},
	}
	for _, tc := range cases {
		if got := exitCode(tc.active, tc.unused, tc.opts); got != tc.want {
			t.Errorf("%s: exitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestEscapeGHA(t *testing.T) {
	// The workflow-command parser terminates the message at a bare
	// newline and expands %, so all three must be escaped.
	got := escapeGHA("50% done\r\nnext")
	want := "50%25 done%0D%0Anext"
	if got != want {
		t.Errorf("escapeGHA = %q, want %q", got, want)
	}
}

func TestJSONReportShape(t *testing.T) {
	// The report must marshal with empty slices, not nulls: consumers
	// index findings unconditionally.
	b, err := json.Marshal(jsonReport{Packages: 3, Findings: []jsonFinding{}, Suppressed: []jsonFinding{}, Suppressions: []jsonSuppression{}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"packages":3,"findings":[],"suppressed":[],"suppressions":[]}`
	if string(b) != want {
		t.Errorf("report = %s, want %s", b, want)
	}
}

func TestRenderRelativizes(t *testing.T) {
	d := analysis.Diagnostic{Analyzer: "lockhold", Message: "m"}
	d.Pos.Filename = "/repo/internal/kernel/object.go"
	d.Pos.Line = 12
	if got, want := render("/repo", d), "internal/kernel/object.go:12: lockhold: m"; got != want {
		t.Errorf("render = %q, want %q", got, want)
	}
	// Paths outside the root stay absolute rather than sprouting ../.
	d.Pos.Filename = "/elsewhere/x.go"
	if got := render("/repo", d); got != "/elsewhere/x.go:12: lockhold: m" {
		t.Errorf("render outside root = %q", got)
	}
}
