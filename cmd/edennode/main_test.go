package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMultiProcessSystem builds the edennode binary and assembles a
// real two-process Eden system over TCP loopback, driving both
// consoles: node 2 creates a counter, node 1 invokes it remotely, and
// the console's editor view renders it. This is the paper's
// deployment shape exercised end to end through the shipped binary.
func TestMultiProcessSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns subprocesses")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "edennode")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Reserve two loopback ports.
	addr1, addr2 := freePort(t), freePort(t)

	n1 := startNode(t, bin, 1, addr1, fmt.Sprintf("2=%s", addr2))
	n2 := startNode(t, bin, 2, addr2, fmt.Sprintf("1=%s", addr1))

	// Node 2 creates a counter; its console prints the capability.
	n2.send("create counter")
	capHex := n2.expect(t, regexp.MustCompile(`cap ([0-9a-f]+)`), 5*time.Second)

	// Node 1 invokes it twice across the wire.
	n1.send("invoke " + capHex + " inc")
	n1.expect(t, regexp.MustCompile(`ok \(8 bytes\): 0000000000000001`), 5*time.Second)
	n1.send("invoke " + capHex + " inc")
	n1.expect(t, regexp.MustCompile(`ok \(8 bytes\): 0000000000000002`), 5*time.Second)

	// The editor view renders the remote object from node 1.
	n1.send("show " + capHex)
	n1.expect(t, regexp.MustCompile(`type counter`), 5*time.Second)

	// Move the counter from node 2 to node 1, then read it locally.
	n2.send("move " + capHex + " 1")
	n2.expect(t, regexp.MustCompile(`moved to node 1`), 5*time.Second)
	n1.send("invoke " + capHex + " get")
	n1.expect(t, regexp.MustCompile(`ok \(8 bytes\): 0000000000000002`), 5*time.Second)

	n1.send("quit")
	n2.send("quit")
	n1.wait(t)
	n2.wait(t)
}

// nodeProc wraps one running edennode process and its console pipes.
type nodeProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser

	mu  sync.Mutex
	out strings.Builder
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startNode(t *testing.T, bin string, num int, listen, peers string) *nodeProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-node", fmt.Sprint(num),
		"-listen", listen,
		"-peers", peers,
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	np := &nodeProc{cmd: cmd, stdin: stdin}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = stdin.Close()
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			np.mu.Lock()
			np.out.WriteString(sc.Text())
			np.out.WriteString("\n")
			np.mu.Unlock()
		}
	}()
	return np
}

func (n *nodeProc) send(line string) {
	_, _ = io.WriteString(n.stdin, line+"\n")
}

// expect polls the accumulated console output for the pattern and
// returns its first capture group (or full match).
func (n *nodeProc) expect(t *testing.T, re *regexp.Regexp, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		n.mu.Lock()
		out := n.out.String()
		n.mu.Unlock()
		if m := re.FindStringSubmatch(out); m != nil {
			if len(m) > 1 {
				return m[1]
			}
			return m[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("console never matched %v; output so far:\n%s", re, out)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (n *nodeProc) wait(t *testing.T) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- n.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Error("edennode did not exit after quit")
		_ = n.cmd.Process.Kill()
	}
}
