// Command edennode runs one Eden node as a standalone process over
// TCP, so a real multi-machine (or multi-process) Eden system can be
// assembled — the deployment shape of the paper's five-node prototype.
//
// Each node is told its number, listen address, and peers. A small
// line-oriented console on stdin drives it: create objects, invoke
// operations (on objects anywhere in the system), checkpoint, move,
// inspect. Capabilities print as hex tokens that can be pasted into
// another node's console — exactly the "pass a capability around"
// workflow of Eden.
//
// Example (three shells):
//
//	edennode -node 1 -listen 127.0.0.1:7001 -peers 2=127.0.0.1:7002,3=127.0.0.1:7003
//	edennode -node 2 -listen 127.0.0.1:7002 -peers 1=127.0.0.1:7001,3=127.0.0.1:7003
//	edennode -node 3 -listen 127.0.0.1:7003 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002
//
//	node-1> create counter
//	cap 0000000100000000...
//	node-2> invoke 0000000100000000... inc
//	ok (1 bytes): 01
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"eden/internal/capability"
	"eden/internal/editor"
	"eden/internal/efs"
	"eden/internal/faultstore"
	"eden/internal/kernel"
	"eden/internal/killpoint"
	"eden/internal/naming"
	"eden/internal/rights"
	"eden/internal/segment"
	"eden/internal/store"
	"eden/internal/telemetry"
	"eden/internal/transport"
)

func main() {
	node := flag.Uint("node", 1, "node number (unique in the system)")
	listen := flag.String("listen", "127.0.0.1:7001", "listen address")
	peers := flag.String("peers", "", "comma-separated peer list: num=host:port,...")
	storeDir := flag.String("store", "", "directory for file-backed long-term storage (default: in-memory)")
	name := flag.String("name", "", "node label (default: node-<num>)")
	metrics := flag.String("metrics", "", "serve telemetry over HTTP on this address (e.g. 127.0.0.1:9100); empty disables")
	sendq := flag.Int("sendq", 0, "per-peer send queue depth in frames (0 = transport default)")
	sendTimeout := flag.Duration("send-timeout", 0, "how long a unicast send blocks on a full queue before dropping (0 = transport default)")
	dialTimeout := flag.Duration("dial-timeout", 0, "bound on one TCP dial attempt to a peer (0 = transport default)")
	redialBackoff := flag.Duration("redial-backoff", 0, "initial pause after a failed dial, doubling with jitter per failure (0 = transport default)")
	readers := flag.Int("readers", 0, "per-object reader pool: concurrent read-only processes of one object (0 = kernel default)")
	asyncPending := flag.Int("async-pending", 0, "async dispatcher pending-invocation table cap; submissions past it are shed (0 = kernel default)")
	asyncWorkers := flag.Int("async-workers", 0, "async dispatcher worker-pool size (0 = kernel default)")
	replicas := flag.Bool("replicas", false, "serve stale-tolerant reads from checkpoint shadows of objects this node backs up")
	recoverGrace := flag.Duration("recover-grace", 10*time.Second, "refuse failure-recovery promotion of a backed-up object while its home shipped a checkpoint (or this node booted) within this window; 0 promotes immediately")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the fault-injection schedule (0 = faultstore default); faults only fire with a fault probability or -fault-sync-lie set")
	faultFail := flag.Float64("fault-fail-prob", 0, "probability a store operation fails with an injected media error")
	faultDelay := flag.Float64("fault-delay-prob", 0, "probability a store operation is delayed")
	faultMaxDelay := flag.Duration("fault-max-delay", 0, "bound on one injected store delay (0 = faultstore default)")
	faultTorn := flag.Float64("fault-torn-prob", 0, "probability a store Put tears: success reported, corrupt record written")
	faultSyncLie := flag.Bool("fault-sync-lie", false, "acknowledge store writes before they are durable; a crash loses them")
	flag.Parse()

	// A crash harness plants a deterministic death through the
	// environment; an unarmed process pays one atomic load per
	// boundary.
	if p, armed := killpoint.ArmFromEnv(); armed {
		fmt.Printf("killpoint armed: %s (after %s passes)\n", p, os.Getenv(killpoint.EnvAfter))
	}

	if *name == "" {
		*name = fmt.Sprintf("node-%d", *node)
	}
	tr, err := transport.NewTCPWithConfig(uint32(*node), *listen, transport.Config{
		QueueDepth:     *sendq,
		EnqueueTimeout: *sendTimeout,
		DialTimeout:    *dialTimeout,
		RedialBackoff:  *redialBackoff,
	})
	if err != nil {
		fatal("listen: %v", err)
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			numAddr := strings.SplitN(strings.TrimSpace(p), "=", 2)
			if len(numAddr) != 2 {
				fatal("bad peer %q (want num=host:port)", p)
			}
			n, err := strconv.ParseUint(numAddr[0], 10, 32)
			if err != nil {
				fatal("bad peer number %q: %v", numAddr[0], err)
			}
			tr.AddPeer(uint32(n), numAddr[1])
		}
	}

	var tel *telemetry.Registry
	if *metrics != "" {
		tel = telemetry.New()
	}

	var st store.Store
	if *storeDir != "" {
		st, err = store.NewFile(*storeDir)
		if err != nil {
			fatal("store: %v", err)
		}
	}
	if *faultFail > 0 || *faultDelay > 0 || *faultTorn > 0 || *faultSyncLie {
		if st == nil {
			st = store.NewMemory()
		}
		st = faultstore.Wrap(st, faultstore.Config{
			Seed:      *faultSeed,
			FailProb:  *faultFail,
			DelayProb: *faultDelay,
			MaxDelay:  *faultMaxDelay,
			TornProb:  *faultTorn,
			SyncLie:   *faultSyncLie,
			Telemetry: tel,
		})
		fmt.Printf("faultstore armed: seed=%d fail=%g delay=%g torn=%g sync-lie=%v\n",
			*faultSeed, *faultFail, *faultDelay, *faultTorn, *faultSyncLie)
	}

	reg := kernel.NewRegistry()
	if err := naming.RegisterType(reg); err != nil {
		fatal("%v", err)
	}
	if err := efs.RegisterType(reg); err != nil {
		fatal("%v", err)
	}
	if err := editor.RegisterBaseType(reg); err != nil {
		fatal("%v", err)
	}
	if err := reg.Register(counterType()); err != nil {
		fatal("%v", err)
	}
	cfg := kernel.DefaultConfig(uint32(*node), *name)
	cfg.ReaderPool = *readers
	cfg.AsyncPending = *asyncPending
	cfg.AsyncWorkers = *asyncWorkers
	cfg.ReplicaServe = *replicas
	cfg.RecoverGrace = *recoverGrace
	if tel != nil {
		cfg.Telemetry = tel
		tr.SetTelemetry(tel)
	}
	k := kernel.New(cfg, tr, reg, st)
	defer k.Close()
	if *replicas {
		fmt.Println("replica serving enabled: stale-tolerant reads served from checkpoint shadows")
	}
	if tel != nil {
		addr, err := serveMetrics(*metrics, tel, k)
		if err != nil {
			fatal("metrics: %v", err)
		}
		fmt.Printf("telemetry on http://%s/metrics (traces at /trace, replicas at /replicas)\n", addr)
	}

	fmt.Printf("%s listening on %s; peers: %v\n", *name, tr.Addr(), tr.Peers())
	fmt.Println(`commands: create <type> | invoke <cap> <op> [hexdata] | rinvoke <cap> <op> [hexdata] |
          ainvoke <cap> <op> [hexdata] | checksite <cap> <local|remote|replicated> [site,...] |
          types | ls | checkpoint <cap> | passivate <cap> | move <cap> <node> | stats |
          describe <cap> | show <cap> | where <cap> | quit`)
	console(k)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// serveMetrics exposes the node's telemetry registry over HTTP in the
// expvar style: GET /metrics returns the full snapshot as JSON, GET
// /trace the recent invocation spans (optionally ?trace=<id> for one
// invocation), GET /replicas the node's replica-serving state (one
// entry per backed-up object: home, serving floor, live shadow). It
// returns the bound address.
func serveMetrics(addr string, tel *telemetry.Registry, k *kernel.Kernel) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tel.Snapshot())
	})
	mux.HandleFunc("/replicas", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(k.Replicas())
	})
	mux.HandleFunc("/killpoints", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(killpoint.Counters())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		spans := tel.Spans()
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			spans = tel.SpansFor(id)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// counterType gives every node a demo type to play with. It extends
// the editor's displayable base type, inheriting the default "display"
// operation the console's show command invokes.
func counterType() *kernel.TypeManager {
	tm := kernel.NewType("counter")
	tm.Extends = editor.BaseTypeName
	tm.Init = func(o *kernel.Object) error {
		return o.Update(func(r *segment.Representation) error {
			r.SetData("n", make([]byte, 8))
			return nil
		})
	}
	tm.Limit("write", 1)
	tm.Op(kernel.Operation{
		Name:  "inc",
		Class: "write",
		Handler: func(c *kernel.Call) {
			var out [8]byte
			_ = c.Self().Update(func(r *segment.Representation) error {
				b, _ := r.Data("n")
				binary.BigEndian.PutUint64(out[:], binary.BigEndian.Uint64(b)+1)
				r.SetData("n", out[:])
				return nil
			})
			c.Return(out[:])
		},
	})
	tm.Op(kernel.Operation{
		Name:     "get",
		ReadOnly: true,
		Handler: func(c *kernel.Call) {
			c.Self().View(func(r *segment.Representation) {
				b, _ := r.Data("n")
				c.Return(b)
			})
		},
	})
	// incdur is inc with a durability promise: the increment is
	// checkpointed before the reply, so an acknowledged incdur must
	// survive any crash. Crash harnesses build their no-lost-writes
	// invariant on it. Reply: value(8) | checkpoint version(8).
	tm.Op(kernel.Operation{
		Name:  "incdur",
		Class: "write",
		Handler: func(c *kernel.Call) {
			var out [8]byte
			err := c.Self().Update(func(r *segment.Representation) error {
				b, _ := r.Data("n")
				binary.BigEndian.PutUint64(out[:], binary.BigEndian.Uint64(b)+1)
				r.SetData("n", out[:])
				return nil
			})
			if err == nil {
				err = c.Self().Checkpoint()
			}
			if err != nil {
				c.Fail("incdur: %v", err)
				return
			}
			var ver [8]byte
			binary.BigEndian.PutUint64(ver[:], c.Self().Version())
			c.Return(append(out[:], ver[:]...))
		},
	})
	// stat reports value(8) | checkpoint version(8) without mutating
	// anything — the harness's post-restart observation.
	tm.Op(kernel.Operation{
		Name:     "stat",
		ReadOnly: true,
		Handler: func(c *kernel.Call) {
			var b [16]byte
			c.Self().View(func(r *segment.Representation) {
				n, _ := r.Data("n")
				copy(b[:8], n)
			})
			binary.BigEndian.PutUint64(b[8:], c.Self().Version())
			c.Return(b[:])
		},
	})
	// secret requires the first type-defined rights bit, so a harness
	// can verify rights restriction survives crash/reincarnation: a
	// capability restricted to Invoke must keep failing here.
	tm.Op(kernel.Operation{
		Name:     "secret",
		ReadOnly: true,
		Rights:   rights.Type(0),
		Handler: func(c *kernel.Call) {
			c.Return([]byte("secret"))
		},
	})
	return tm
}

// console runs the operator REPL.
func console(k *kernel.Kernel) {
	sc := bufio.NewScanner(os.Stdin)
	var asyncSeq uint64 // numbers ainvoke submissions for their completion lines
	prompt := func() { fmt.Printf("%s> ", k.Name()) }
	for prompt(); sc.Scan(); prompt() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "types":
			for _, n := range k.Types().Names() {
				fmt.Println(" ", n)
			}
		case "ls":
			for _, id := range k.ActiveObjects() {
				fmt.Println(" ", id)
			}
		case "stats":
			fmt.Printf("  %+v\n", k.Stats())
			fmt.Printf("  locator: %+v\n", k.Locator().Stats())
		case "create":
			if len(fields) != 2 {
				fmt.Println("  usage: create <type>")
				continue
			}
			cap, err := k.Create(fields[1], nil)
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			fmt.Printf("  cap %s\n", hex.EncodeToString(cap.Encode(nil)))
		// rinvoke is invoke with replica tolerance: the read may be
		// served from a checkpoint shadow at a checksite, trading
		// currency for latency and availability.
		case "invoke", "rinvoke":
			if len(fields) < 3 {
				fmt.Printf("  usage: %s <cap> <op> [hexdata]\n", fields[0])
				continue
			}
			cap, err := parseCap(fields[1])
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			var data []byte
			if len(fields) > 3 {
				data, err = hex.DecodeString(fields[3])
				if err != nil {
					fmt.Println("  bad hex data:", err)
					continue
				}
			}
			rep, err := k.Invoke(cap, fields[2], data, nil, &kernel.InvokeOptions{
				Timeout:      k.Config().DefaultTimeout,
				AllowReplica: fields[0] == "rinvoke",
			})
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			fmt.Printf("  ok (%d bytes): %s\n", len(rep.Data), hex.EncodeToString(rep.Data))
			for _, c := range rep.Caps {
				fmt.Printf("  cap %s\n", hex.EncodeToString(c.Encode(nil)))
			}
		// ainvoke submits through the async dispatcher and returns the
		// prompt immediately; the completion prints when it arrives.
		case "ainvoke":
			if len(fields) < 3 {
				fmt.Println("  usage: ainvoke <cap> <op> [hexdata]")
				continue
			}
			cap, err := parseCap(fields[1])
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			var data []byte
			if len(fields) > 3 {
				data, err = hex.DecodeString(fields[3])
				if err != nil {
					fmt.Println("  bad hex data:", err)
					continue
				}
			}
			asyncSeq++
			seq := asyncSeq
			p := k.InvokeAsync(cap, fields[2], data, nil, &kernel.InvokeOptions{
				Timeout: k.Config().DefaultTimeout,
			})
			fmt.Printf("  async #%d submitted\n", seq)
			go func() {
				rep, err := p.Wait()
				if err != nil {
					fmt.Printf("\n  async #%d failed: %v\n", seq, err)
					return
				}
				fmt.Printf("\n  async #%d ok (%d bytes): %s\n", seq, len(rep.Data), hex.EncodeToString(rep.Data))
			}()
		case "checksite":
			if len(fields) < 3 {
				fmt.Println("  usage: checksite <cap> <local|remote|replicated> [site,...]")
				continue
			}
			var level kernel.Reliability
			switch fields[2] {
			case "local":
				level = kernel.RelLocal
			case "remote":
				level = kernel.RelRemote
			case "replicated":
				level = kernel.RelReplicated
			default:
				fmt.Println("  bad level:", fields[2])
				continue
			}
			var sites []uint32
			if len(fields) > 3 {
				ok := true
				for _, s := range strings.Split(fields[3], ",") {
					n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
					if err != nil {
						fmt.Println("  bad site number:", err)
						ok = false
						break
					}
					sites = append(sites, uint32(n))
				}
				if !ok {
					continue
				}
			}
			withObject(k, fields[1], func(o *kernel.Object) {
				if err := o.SetChecksite(level, sites...); err != nil {
					fmt.Println(" ", err)
				} else {
					fmt.Printf("  checksite %s %v\n", fields[2], sites)
				}
			})
		case "checkpoint":
			if len(fields) != 2 {
				fmt.Println("  usage: checkpoint <cap>")
				continue
			}
			withObject(k, fields[1], func(o *kernel.Object) {
				if err := o.Checkpoint(); err != nil {
					fmt.Println(" ", err)
				} else {
					fmt.Printf("  checkpointed at version %d\n", o.Version())
				}
			})
		case "passivate":
			if len(fields) != 2 {
				fmt.Println("  usage: passivate <cap>")
				continue
			}
			withObject(k, fields[1], func(o *kernel.Object) {
				if err := o.Passivate(); err != nil {
					fmt.Println(" ", err)
				} else {
					fmt.Printf("  passivated at version %d\n", o.Version())
				}
			})
		case "move":
			if len(fields) != 3 {
				fmt.Println("  usage: move <cap> <node>")
				continue
			}
			dest, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				fmt.Println("  bad node number:", err)
				continue
			}
			withObject(k, fields[1], func(o *kernel.Object) {
				if err := <-o.Move(uint32(dest)); err != nil {
					fmt.Println(" ", err)
				} else {
					fmt.Printf("  moved to node %d\n", dest)
				}
			})
		case "show":
			if len(fields) != 2 {
				fmt.Println("  usage: show <cap>")
				continue
			}
			cap, err := parseCap(fields[1])
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			for _, line := range strings.Split(editor.Render(k, cap), "\n") {
				fmt.Println("  " + line)
			}
		// where reports this node's bookkeeping for the object — active
		// incarnation, forwarding pointer, surviving move intent, stored
		// record — so a harness can assert exactly one node is the home.
		case "where":
			if len(fields) != 2 {
				fmt.Println("  usage: where <cap>")
				continue
			}
			cap, err := parseCap(fields[1])
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			fmt.Printf("  where %s\n", k.DebugObjectState(cap.ID()))
		case "describe":
			if len(fields) != 2 {
				fmt.Println("  usage: describe <cap>")
				continue
			}
			withObject(k, fields[1], func(o *kernel.Object) {
				a := o.Describe()
				fmt.Printf("  name %v type %q version %d frozen %v\n", a.Name, a.TypeName, a.Version, a.Frozen)
				for _, s := range a.Segments {
					fmt.Printf("    segment %-20q %-5s %d\n", s.Name, s.Kind, s.Len)
				}
			})
		default:
			fmt.Println("  unknown command:", fields[0])
		}
	}
}

func parseCap(s string) (capability.Capability, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return capability.Capability{}, fmt.Errorf("bad capability hex: %v", err)
	}
	cap, rest, err := capability.Decode(raw)
	if err != nil || len(rest) != 0 {
		return capability.Capability{}, fmt.Errorf("bad capability: %v", err)
	}
	return cap, nil
}

func withObject(k *kernel.Kernel, capHex string, fn func(o *kernel.Object)) {
	cap, err := parseCap(capHex)
	if err != nil {
		fmt.Println(" ", err)
		return
	}
	o, err := k.Object(cap.ID())
	if err != nil {
		fmt.Println(" ", err)
		return
	}
	fn(o)
}
