package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"eden"
	"eden/internal/kernel"
	"eden/internal/segment"
	"eden/internal/store"
	"eden/internal/telemetry"
	"eden/internal/transport"
)

// BenchReport is the machine-readable benchmark output, written as
// BENCH_<rev>.json. The CI bench job compares it against the
// checked-in bench_baseline.json and fails on throughput regressions.
type BenchReport struct {
	Rev string `json:"rev"`
	// Notes is free-form context for a committed report (what changed,
	// what it was measured against); tooling ignores it.
	Notes   string        `json:"notes,omitempty"`
	Results []BenchResult `json:"results"`
}

// BenchResult is one op class's throughput and latency distribution,
// the latter read from the telemetry registry's histograms.
type BenchResult struct {
	Name      string  `json:"name"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Nanos  int64   `json:"p50_nanos"`
	P95Nanos  int64   `json:"p95_nanos"`
	P99Nanos  int64   `json:"p99_nanos"`
}

// benchType is a minimal type whose "ping" op returns its input — the
// cheapest possible invocation, so the numbers measure kernel and
// transport overhead rather than handler work.
func benchType() *eden.TypeManager {
	tm := eden.NewType("benchmark")
	tm.Op(eden.Operation{
		Name:     "ping",
		ReadOnly: true,
		Handler:  func(c *eden.Call) { c.Return(c.Data) },
	})
	return tm
}

// hotReadWork models the paper's satellite-device read: a read-only
// operation that holds the representation for a short, fixed time
// (storage latency, decode work) rather than returning instantly.
// This is the workload the reader pool exists for — with an exclusive
// coordinator the holds serialize; with AccessRead fan-out they
// overlap even on one CPU.
const hotReadWork = 200 * time.Microsecond

// hotReadType is a type whose "scan" op reads a blob from the
// representation under the shared lock and simulates device latency
// while holding it.
func hotReadType() *eden.TypeManager {
	tm := eden.NewType("hotread")
	tm.Op(eden.Operation{
		Name:   "scan",
		Access: eden.AccessRead,
		Handler: func(c *eden.Call) {
			var n int
			c.Self().View(func(r *eden.Representation) {
				b, _ := r.Data("blob")
				n = len(b)
				time.Sleep(hotReadWork)
			})
			c.Return([]byte{byte(n), byte(n >> 8)})
		},
	})
	return tm
}

// replBenchType is the replica-bench workload: a mutable object with a
// hot AccessRead "scan" (per hotReadType) plus an exclusive "churn"
// write that holds the object for ~2ms per call and checkpoints when
// its argument asks — the duty-cycled writer that starves home reads
// and gives checkpoint shadows something to be stale against.
func replBenchType() *eden.TypeManager {
	tm := eden.NewType("replbench")
	tm.Op(eden.Operation{
		Name:   "scan",
		Access: eden.AccessRead,
		Handler: func(c *eden.Call) {
			var n int
			c.Self().View(func(r *eden.Representation) {
				b, _ := r.Data("blob")
				n = len(b)
				time.Sleep(hotReadWork)
			})
			c.Return([]byte{byte(n), byte(n >> 8)})
		},
	})
	tm.Op(eden.Operation{
		Name:   "churn",
		Access: eden.AccessWrite,
		Handler: func(c *eden.Call) {
			err := c.Self().Update(func(r *eden.Representation) error {
				b, _ := r.Data("blob")
				if len(b) > 0 {
					b[0]++
					r.SetData("blob", b)
				}
				return nil
			})
			if err != nil {
				c.Fail("churn: %v", err)
				return
			}
			// Hold write exclusivity for the work period: queued home
			// reads wait it out (writer preference), replica reads don't.
			time.Sleep(3 * time.Millisecond)
			if len(c.Data) > 0 && c.Data[0] == 1 {
				if err := c.Self().Checkpoint(); err != nil {
					c.Fail("checkpoint: %v", err)
				}
			}
		},
	})
	return tm
}

// nestedLagWork is the remote handler latency the pipelined-writer
// bench suspends on: long enough that overlapping the waits dominates
// fixed invocation overhead, short enough to keep the run brief.
const nestedLagWork = time.Millisecond

// lagType's "lag" op models a slow downstream object (a device, a
// storage server): it simply holds the caller for nestedLagWork.
func lagType() *eden.TypeManager {
	tm := eden.NewType("lag")
	tm.Op(eden.Operation{
		Name: "lag",
		Handler: func(c *eden.Call) {
			time.Sleep(nestedLagWork)
			c.Return(nil)
		},
	})
	return tm
}

// pipeWriteType is the writer-pipelining workload: an exclusive write
// that mutates, then performs a nested invocation of a remote lag
// object. "relay" uses Call.Invoke, releasing the object's
// exclusivity across the nested wait; "relayhold" is the comparator
// that keeps exclusivity via Call.Kernel().Invoke, serializing every
// writer end-to-end.
func pipeWriteType() *eden.TypeManager {
	relay := func(c *eden.Call, hold bool) {
		err := c.Self().Update(func(r *eden.Representation) error {
			b, _ := r.Data("n")
			if len(b) != 8 {
				b = make([]byte, 8)
			} else {
				b = append([]byte(nil), b...)
			}
			for i := 7; i >= 0; i-- {
				b[i]++
				if b[i] != 0 {
					break
				}
			}
			r.SetData("n", b)
			return nil
		})
		if err != nil {
			c.Fail("relay: %v", err)
			return
		}
		nested := &eden.InvokeOptions{Timeout: 10 * time.Second}
		if hold {
			_, err = c.Kernel().Invoke(c.Caps[0], "lag", nil, nil, nested)
		} else {
			_, err = c.Invoke(c.Caps[0], "lag", nil, nil, nested)
		}
		if err != nil {
			c.Fail("nested lag: %v", err)
			return
		}
		c.Return(nil)
	}
	tm := eden.NewType("pipewrite")
	tm.Op(eden.Operation{
		Name:    "relay",
		Access:  eden.AccessWrite,
		Handler: func(c *eden.Call) { relay(c, false) },
	})
	tm.Op(eden.Operation{
		Name:    "relayhold",
		Access:  eden.AccessWrite,
		Handler: func(c *eden.Call) { relay(c, true) },
	})
	return tm
}

// commuteWork is the post-mutation handler latency of the commuting
// counter — the work (validation, notification, device time) whose
// overlap commutative batching buys.
const commuteWork = 500 * time.Microsecond

// commuteBenchType is the commutative-batching workload: an
// AccessWrite "add" whose executions commute, so the coordinator may
// run a queued batch of them under one exclusive admission.
func commuteBenchType() *eden.TypeManager {
	tm := eden.NewType("commutebench")
	tm.Op(eden.Operation{
		Name:     "add",
		Access:   eden.AccessWrite,
		Commutes: true,
		Handler: func(c *eden.Call) {
			err := c.Self().Update(func(r *eden.Representation) error {
				b, _ := r.Data("n")
				if len(b) != 8 {
					b = make([]byte, 8)
				} else {
					b = append([]byte(nil), b...)
				}
				for i := 7; i >= 0; i-- {
					b[i]++
					if b[i] != 0 {
						break
					}
				}
				r.SetData("n", b)
				return nil
			})
			if err != nil {
				c.Fail("add: %v", err)
				return
			}
			time.Sleep(commuteWork)
			c.Return(nil)
		},
	})
	return tm
}

// measureOnce runs every scenario once, in order, each on a fresh
// system with telemetry enabled.
func measureOnce() ([]BenchResult, error) {
	var results []BenchResult

	local, err := benchLocalInvoke(5000)
	if err != nil {
		return nil, fmt.Errorf("local invoke: %w", err)
	}
	results = append(results, local)

	remote, err := benchRemoteInvoke(2000)
	if err != nil {
		return nil, fmt.Errorf("remote invoke: %w", err)
	}
	results = append(results, remote)

	conc, err := benchRemoteInvokeConcurrent(4000, 8)
	if err != nil {
		return nil, fmt.Errorf("concurrent remote invoke: %w", err)
	}
	results = append(results, conc)

	hot1, err := benchHotRead(800, 1)
	if err != nil {
		return nil, fmt.Errorf("hot read x1: %w", err)
	}
	results = append(results, hot1)

	hot8, err := benchHotRead(3200, 8)
	if err != nil {
		return nil, fmt.Errorf("hot read x8: %w", err)
	}
	results = append(results, hot8)

	ckpt, err := benchCheckpoint(500)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	results = append(results, ckpt)

	repl, err := benchReplicaRead(2400, 8)
	if err != nil {
		return nil, fmt.Errorf("replica read: %w", err)
	}
	results = append(results, repl...)

	nested, err := benchWriteNested(480, 8, true)
	if err != nil {
		return nil, fmt.Errorf("nested write (pipelined): %w", err)
	}
	results = append(results, nested)

	nestedHold, err := benchWriteNested(480, 8, false)
	if err != nil {
		return nil, fmt.Errorf("nested write (held): %w", err)
	}
	results = append(results, nestedHold)

	c1, err := benchCommute(600, 1)
	if err != nil {
		return nil, fmt.Errorf("commute x1: %w", err)
	}
	results = append(results, c1)

	c8, err := benchCommute(2400, 8)
	if err != nil {
		return nil, fmt.Errorf("commute x8: %w", err)
	}
	results = append(results, c8)

	return results, nil
}

// medianResults reduces repeated measurements to one result per
// scenario: the run with the median throughput, kept whole so the
// reported latency quantiles come from the same run as the reported
// ops/sec.
func medianResults(runs [][]BenchResult) []BenchResult {
	byName := make(map[string][]BenchResult)
	var order []string
	for _, run := range runs {
		for _, r := range run {
			if _, seen := byName[r.Name]; !seen {
				order = append(order, r.Name)
			}
			byName[r.Name] = append(byName[r.Name], r)
		}
	}
	out := make([]BenchResult, 0, len(order))
	for _, name := range order {
		rs := byName[name]
		sort.Slice(rs, func(i, j int) bool { return rs[i].OpsPerSec < rs[j].OpsPerSec })
		out = append(out, rs[len(rs)/2])
	}
	return out
}

// runBenchJSON measures the op classes the roadmap tracks — local
// invoke, remote (Mesh) invoke, concurrent remote invoke, hot-object
// concurrent reads, and checkpoint — and writes the report. With
// runs > 1 the whole suite repeats and each scenario reports its
// median run, which is what CI compares: single-shot numbers on a
// 1-vCPU runner are too noisy to gate on. If baseline is non-empty
// the report is compared against it and an error returned on any op
// class whose throughput regressed more than tolerance.
func runBenchJSON(rev, out, baseline string, tolerance float64, runs int) error {
	if runs < 1 {
		runs = 1
	}
	report := BenchReport{Rev: rev}

	all := make([][]BenchResult, 0, runs)
	for i := 0; i < runs; i++ {
		results, err := measureOnce()
		if err != nil {
			return err
		}
		all = append(all, results)
	}
	report.Results = medianResults(all)

	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", rev)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	for _, r := range report.Results {
		fmt.Printf("  %-16s %9.0f ops/sec  p50 %-10v p95 %-10v p99 %v\n",
			r.Name, r.OpsPerSec,
			time.Duration(r.P50Nanos), time.Duration(r.P95Nanos), time.Duration(r.P99Nanos))
	}

	if err := checkReplicaWin(report.Results); err != nil {
		return err
	}
	if err := checkWriteWins(report.Results); err != nil {
		return err
	}
	if baseline != "" {
		return compareBaseline(report, baseline, tolerance)
	}
	return nil
}

// result distills one op class from its latency histogram plus the
// measured wall-clock throughput.
func result(name string, ops int, elapsed time.Duration, tel *eden.Telemetry, hist string) (BenchResult, error) {
	snap := tel.Snapshot()
	h, ok := snap.Histograms[hist]
	if !ok || h.Count == 0 {
		return BenchResult{}, fmt.Errorf("histogram %q recorded no samples", hist)
	}
	return BenchResult{
		Name:      name,
		Ops:       ops,
		OpsPerSec: float64(ops) / elapsed.Seconds(),
		P50Nanos:  int64(h.Quantile(0.50)),
		P95Nanos:  int64(h.Quantile(0.95)),
		P99Nanos:  int64(h.Quantile(0.99)),
	}, nil
}

func benchLocalInvoke(ops int) (BenchResult, error) {
	sys, err := eden.NewSystem(eden.SystemConfig{Telemetry: true})
	if err != nil {
		return BenchResult{}, err
	}
	defer sys.Close()
	if err := sys.RegisterType(benchType()); err != nil {
		return BenchResult{}, err
	}
	n, err := sys.AddNode("bench")
	if err != nil {
		return BenchResult{}, err
	}
	cap, err := n.CreateObject("benchmark")
	if err != nil {
		return BenchResult{}, err
	}
	payload := []byte("ping")
	opts := &eden.InvokeOptions{Timeout: 10 * time.Second}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := n.Invoke(cap, "ping", payload, nil, opts); err != nil {
			return BenchResult{}, err
		}
	}
	return result("invoke.local", ops, time.Since(start), n.Telemetry(), "kernel.invoke.local.latency")
}

func benchRemoteInvoke(ops int) (BenchResult, error) {
	sys, err := eden.NewSystem(eden.SystemConfig{Telemetry: true})
	if err != nil {
		return BenchResult{}, err
	}
	defer sys.Close()
	if err := sys.RegisterType(benchType()); err != nil {
		return BenchResult{}, err
	}
	host, err := sys.AddNode("host")
	if err != nil {
		return BenchResult{}, err
	}
	caller, err := sys.AddNode("caller")
	if err != nil {
		return BenchResult{}, err
	}
	cap, err := host.CreateObject("benchmark")
	if err != nil {
		return BenchResult{}, err
	}
	payload := []byte("ping")
	opts := &eden.InvokeOptions{Timeout: 10 * time.Second}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := caller.Invoke(cap, "ping", payload, nil, opts); err != nil {
			return BenchResult{}, err
		}
	}
	return result("invoke.remote", ops, time.Since(start), caller.Telemetry(), "kernel.invoke.remote.latency")
}

// benchRemoteInvokeConcurrent measures N simultaneous invokers
// driving cross-node invocations between two kernels wired over real
// TCP loopback — the workload the transport's per-peer send queues and
// writev coalescing exist for. Reported ops/sec is aggregate across
// all invokers.
func benchRemoteInvokeConcurrent(ops, invokers int) (BenchResult, error) {
	reg := kernel.NewRegistry()
	if err := reg.Register(benchType()); err != nil {
		return BenchResult{}, err
	}
	trHost, err := transport.NewTCP(1, "127.0.0.1:0")
	if err != nil {
		return BenchResult{}, err
	}
	trCall, err := transport.NewTCP(2, "127.0.0.1:0")
	if err != nil {
		trHost.Close()
		return BenchResult{}, err
	}
	trHost.AddPeer(2, trCall.Addr())
	trCall.AddPeer(1, trHost.Addr())
	tel := telemetry.New()
	trCall.SetTelemetry(tel)
	cfgHost := kernel.DefaultConfig(1, "bench-host")
	cfgCall := kernel.DefaultConfig(2, "bench-caller")
	cfgCall.Telemetry = tel
	kh := kernel.New(cfgHost, trHost, reg, store.NewMemory())
	defer kh.Close()
	kc := kernel.New(cfgCall, trCall, reg, store.NewMemory())
	defer kc.Close()

	cap, err := kh.Create("benchmark", nil)
	if err != nil {
		return BenchResult{}, err
	}
	payload := []byte("ping")
	opts := &kernel.InvokeOptions{Timeout: 10 * time.Second}
	// Warm the location cache and the TCP connections outside the
	// timed region.
	if _, err := kc.Invoke(cap, "ping", payload, nil, opts); err != nil {
		return BenchResult{}, err
	}

	perInvoker := ops / invokers
	errs := make(chan error, invokers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < invokers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perInvoker; i++ {
				if _, err := kc.Invoke(cap, "ping", payload, nil, opts); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return BenchResult{}, fmt.Errorf("invoker: %w", err)
	default:
	}
	return result("invoke.remote.concurrent", perInvoker*invokers, elapsed, tel, "kernel.invoke.remote.latency")
}

// benchHotRead drives one hot object with `callers` concurrent
// invokers of its AccessRead "scan" op, all local to one node. Each
// scan holds the shared representation lock for hotReadWork, so the
// scenario measures the coordinator's reader fan-out: with callers=1
// throughput is bounded by one scan at a time; with callers=8 the
// reader pool overlaps the holds and aggregate ops/sec should scale
// well beyond the single-caller figure.
func benchHotRead(ops, callers int) (BenchResult, error) {
	sys, err := eden.NewSystem(eden.SystemConfig{Telemetry: true})
	if err != nil {
		return BenchResult{}, err
	}
	defer sys.Close()
	if err := sys.RegisterType(hotReadType()); err != nil {
		return BenchResult{}, err
	}
	n, err := sys.AddNode("bench")
	if err != nil {
		return BenchResult{}, err
	}
	cap, err := n.CreateObject("hotread")
	if err != nil {
		return BenchResult{}, err
	}
	obj, err := n.Object(cap)
	if err != nil {
		return BenchResult{}, err
	}
	if err := obj.Update(func(r *segment.Representation) error {
		r.SetData("blob", make([]byte, 4096))
		return nil
	}); err != nil {
		return BenchResult{}, err
	}
	opts := &eden.InvokeOptions{Timeout: 30 * time.Second}
	// Warm the dispatch path outside the timed region.
	if _, err := n.Invoke(cap, "scan", nil, nil, opts); err != nil {
		return BenchResult{}, err
	}

	perCaller := ops / callers
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				if _, err := n.Invoke(cap, "scan", nil, nil, opts); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return BenchResult{}, fmt.Errorf("caller: %w", err)
	default:
	}
	name := fmt.Sprintf("invoke.read.hot%d", callers)
	return result(name, perCaller*callers, elapsed, n.Telemetry(), "kernel.invoke.local.latency")
}

func benchCheckpoint(ops int) (BenchResult, error) {
	sys, err := eden.NewSystem(eden.SystemConfig{Telemetry: true})
	if err != nil {
		return BenchResult{}, err
	}
	defer sys.Close()
	if err := sys.RegisterType(benchType()); err != nil {
		return BenchResult{}, err
	}
	n, err := sys.AddNode("bench")
	if err != nil {
		return BenchResult{}, err
	}
	cap, err := n.CreateObject("benchmark")
	if err != nil {
		return BenchResult{}, err
	}
	obj, err := n.Object(cap)
	if err != nil {
		return BenchResult{}, err
	}
	// Give the representation some substance so checkpoints encode a
	// realistic payload rather than an empty record.
	if err := obj.Update(func(r *segment.Representation) error {
		r.SetData("blob", make([]byte, 4096))
		return nil
	}); err != nil {
		return BenchResult{}, err
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := obj.Checkpoint(); err != nil {
			return BenchResult{}, err
		}
	}
	return result("checkpoint", ops, time.Since(start), n.Telemetry(), "kernel.checkpoint.latency")
}

// benchReplicaRead measures the replication tentpole: stale-tolerant
// reads of a hot *mutable* object served from checkpoint shadows at
// its checksites, versus the identical read load forced to the
// write-contended home. Three kernels over real TCP loopback: node 1
// is the home and runs a duty-cycled writer (an exclusive ~2ms
// "churn" per cycle with a short gap, checkpointing every fourth
// write so the shadows track the object); nodes 2 and 3 are
// checkpoint-serving checksites hosting `readers` concurrent readers
// between them. The home-only comparator (invoke.read.home8) runs
// with AllowReplica off, so reads queue behind the writer's holds;
// the replica scenario (invoke.read.replica) serves from local
// shadows and never touches the home. checkReplicaWin gates the
// ratio between the two.
func benchReplicaRead(ops, readers int) ([]BenchResult, error) {
	reg := kernel.NewRegistry()
	if err := reg.Register(replBenchType()); err != nil {
		return nil, err
	}
	trs := make([]*transport.TCP, 3)
	for i := range trs {
		tr, err := transport.NewTCP(uint32(i+1), "127.0.0.1:0")
		if err != nil {
			for _, prev := range trs[:i] {
				prev.Close()
			}
			return nil, err
		}
		trs[i] = tr
	}
	for i, tr := range trs {
		for j, peer := range trs {
			if i != j {
				tr.AddPeer(uint32(j+1), peer.Addr())
			}
		}
	}
	tel := telemetry.New()
	trs[1].SetTelemetry(tel)

	cfgHome := kernel.DefaultConfig(1, "bench-home")
	kh := kernel.New(cfgHome, trs[0], reg, store.NewMemory())
	defer kh.Close()
	kcs := make([]*kernel.Kernel, 2)
	for i := range kcs {
		cfg := kernel.DefaultConfig(uint32(i+2), fmt.Sprintf("bench-checksite-%d", i+2))
		cfg.ReplicaServe = true
		if i == 0 {
			cfg.Telemetry = tel
		}
		kcs[i] = kernel.New(cfg, trs[i+1], reg, store.NewMemory())
		defer kcs[i].Close()
	}

	cap, err := kh.Create("replbench", &kernel.CreateOptions{
		Checksite: &kernel.ChecksiteSpec{Level: kernel.RelReplicated, Sites: []uint32{2, 3}},
	})
	if err != nil {
		return nil, err
	}
	obj, err := kh.Object(cap.ID())
	if err != nil {
		return nil, err
	}
	if err := obj.Update(func(r *segment.Representation) error {
		r.SetData("blob", make([]byte, 4096))
		return nil
	}); err != nil {
		return nil, err
	}
	// Seed the checksites so shadows exist before the first read.
	if err := obj.Checkpoint(); err != nil {
		return nil, err
	}

	// Duty-cycled writer: hold the object exclusively for the churn
	// period, leave a short admission gap, checkpoint every fourth
	// write. Home reads only complete inside the gaps; replica reads
	// don't care.
	opts := &kernel.InvokeOptions{Timeout: 30 * time.Second}
	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		arg := []byte{0}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%4 == 3 {
				arg[0] = 1
			} else {
				arg[0] = 0
			}
			if _, err := kh.Invoke(cap, "churn", arg, nil, opts); err != nil {
				select {
				case writerErr <- err:
				default:
				}
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	stopWriter := func() error {
		close(stop)
		writerWG.Wait()
		select {
		case err := <-writerErr:
			return fmt.Errorf("writer: %w", err)
		default:
			return nil
		}
	}

	// measure drives the read load: `readers` goroutines split across
	// the two checksite kernels, each looping "scan" with the given
	// replica tolerance.
	measure := func(allowReplica bool) (time.Duration, error) {
		iopts := &kernel.InvokeOptions{Timeout: 30 * time.Second, AllowReplica: allowReplica}
		// Warm each checksite's path (shadow materialization or
		// location hint + TCP connection) outside the timed region.
		for _, kc := range kcs {
			if _, err := kc.Invoke(cap, "scan", nil, nil, iopts); err != nil {
				return 0, err
			}
		}
		perReader := ops / readers
		errs := make(chan error, readers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func(kc *kernel.Kernel) {
				defer wg.Done()
				for i := 0; i < perReader; i++ {
					if _, err := kc.Invoke(cap, "scan", nil, nil, iopts); err != nil {
						errs <- err
						return
					}
				}
			}(kcs[w%len(kcs)])
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errs:
			return 0, fmt.Errorf("reader: %w", err)
		default:
		}
		return elapsed, nil
	}

	perReader := ops / readers
	measured := perReader * readers

	homeElapsed, err := measure(false)
	if err != nil {
		stopWriter()
		return nil, fmt.Errorf("home-only read: %w", err)
	}
	replElapsed, err := measure(true)
	if err != nil {
		stopWriter()
		return nil, fmt.Errorf("replica read: %w", err)
	}
	if err := stopWriter(); err != nil {
		return nil, err
	}

	home, err := result(fmt.Sprintf("invoke.read.home%d", readers), measured, homeElapsed, tel, "kernel.invoke.remote.latency")
	if err != nil {
		return nil, err
	}
	repl, err := result("invoke.read.replica", measured, replElapsed, tel, "kernel.replica.read.latency")
	if err != nil {
		return nil, err
	}
	return []BenchResult{home, repl}, nil
}

// benchWriteNested measures the writer-pipelining tentpole: `writers`
// concurrent invokers drive one exclusive object whose write performs
// a nested invocation of a lag object on another node, over real TCP
// loopback. With pipelined=true the write releases its exclusivity
// across the nested wait (Call.Invoke), so the lag latencies of the
// competing writers overlap; with pipelined=false the comparator holds
// exclusivity end-to-end (invoke.write.nested.hold) and the writers
// serialize through every remote round trip. checkWriteWins gates the
// ratio between the two.
func benchWriteNested(ops, writers int, pipelined bool) (BenchResult, error) {
	reg := kernel.NewRegistry()
	if err := reg.Register(lagType()); err != nil {
		return BenchResult{}, err
	}
	if err := reg.Register(pipeWriteType()); err != nil {
		return BenchResult{}, err
	}
	trHost, err := transport.NewTCP(1, "127.0.0.1:0")
	if err != nil {
		return BenchResult{}, err
	}
	trCall, err := transport.NewTCP(2, "127.0.0.1:0")
	if err != nil {
		trHost.Close()
		return BenchResult{}, err
	}
	trHost.AddPeer(2, trCall.Addr())
	trCall.AddPeer(1, trHost.Addr())
	tel := telemetry.New()
	cfgHost := kernel.DefaultConfig(1, "bench-lag-host")
	cfgCall := kernel.DefaultConfig(2, "bench-writer")
	cfgCall.Telemetry = tel
	kh := kernel.New(cfgHost, trHost, reg, store.NewMemory())
	defer kh.Close()
	kc := kernel.New(cfgCall, trCall, reg, store.NewMemory())
	defer kc.Close()

	lag, err := kh.Create("lag", nil)
	if err != nil {
		return BenchResult{}, err
	}
	front, err := kc.Create("pipewrite", nil)
	if err != nil {
		return BenchResult{}, err
	}
	op := "relay"
	name := "invoke.write.nested"
	if !pipelined {
		op = "relayhold"
		name = "invoke.write.nested.hold"
	}
	opts := &kernel.InvokeOptions{Timeout: 30 * time.Second}
	caps := eden.CapabilityList{lag}
	// Warm the lag object's location and the TCP connections outside
	// the timed region.
	if _, err := kc.Invoke(front, op, nil, caps, opts); err != nil {
		return BenchResult{}, err
	}

	perWriter := ops / writers
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := kc.Invoke(front, op, nil, caps, opts); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return BenchResult{}, fmt.Errorf("writer: %w", err)
	default:
	}
	return result(name, perWriter*writers, elapsed, tel, "kernel.invoke.local.latency")
}

// benchCommute drives one commutative counter with `callers`
// concurrent invokers of its Commutes "add" op, each keeping a small
// window of asynchronous submissions in flight so the object's write
// queue stays deep enough for the coordinator to batch. With
// callers=1 the adds serialize (one exclusive admission each); with
// callers=8 a queued run shares one admission and the commuteWork
// holds overlap. checkWriteWins gates the multiplier.
func benchCommute(ops, callers int) (BenchResult, error) {
	sys, err := eden.NewSystem(eden.SystemConfig{Telemetry: true})
	if err != nil {
		return BenchResult{}, err
	}
	defer sys.Close()
	if err := sys.RegisterType(commuteBenchType()); err != nil {
		return BenchResult{}, err
	}
	n, err := sys.AddNode("bench")
	if err != nil {
		return BenchResult{}, err
	}
	cap, err := n.CreateObject("commutebench")
	if err != nil {
		return BenchResult{}, err
	}
	opts := &eden.InvokeOptions{Timeout: 30 * time.Second}
	// Warm the dispatch path outside the timed region.
	if _, err := n.Invoke(cap, "add", nil, nil, opts); err != nil {
		return BenchResult{}, err
	}

	const window = 2
	perCaller := ops / callers
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inflight := make([]*eden.Pending, 0, window)
			for i := 0; i < perCaller; i++ {
				inflight = append(inflight, n.InvokeAsync(cap, "add", nil, nil, opts))
				if len(inflight) == window {
					if _, err := inflight[0].Wait(); err != nil {
						errs <- err
						return
					}
					inflight = inflight[1:]
				}
			}
			for _, p := range inflight {
				if _, err := p.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return BenchResult{}, fmt.Errorf("caller: %w", err)
	default:
	}
	name := fmt.Sprintf("invoke.write.commute%d", callers)
	return result(name, perCaller*callers, elapsed, n.Telemetry(), "kernel.invoke.local.latency")
}

// replicaWinFloor is the minimum ratio of replica-served read
// throughput over home-only read throughput the bench gate accepts:
// the replication tentpole must buy at least a 3x read win on a hot
// mutable object or CI fails.
const replicaWinFloor = 3.0

// checkReplicaWin enforces the replica read multiplier itself — not
// just each scenario's absolute throughput — so the replica path
// cannot quietly degrade into "barely better than asking the home".
func checkReplicaWin(results []BenchResult) error {
	byName := make(map[string]BenchResult, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	repl, okR := byName["invoke.read.replica"]
	home, okH := byName["invoke.read.home8"]
	if !okR || !okH {
		return fmt.Errorf("replica win: missing scenario (replica=%v home8=%v)", okR, okH)
	}
	if home.OpsPerSec <= 0 {
		return fmt.Errorf("replica win: home8 measured %.0f ops/sec", home.OpsPerSec)
	}
	ratio := repl.OpsPerSec / home.OpsPerSec
	if ratio < replicaWinFloor {
		return fmt.Errorf("replica win: %.2fx (replica %.0f vs home %.0f ops/sec) is below the %.1fx floor",
			ratio, repl.OpsPerSec, home.OpsPerSec, replicaWinFloor)
	}
	fmt.Printf("replica read win: %.2fx over home-only reads (floor %.1fx)\n", ratio, replicaWinFloor)
	return nil
}

// nestedWinFloor is the minimum ratio of pipelined nested-write
// throughput over hold-across-the-wait throughput: releasing
// exclusivity across the nested invoke must buy at least 2x or CI
// fails.
const nestedWinFloor = 2.0

// commuteWinFloor is the minimum ratio of 8-caller commutative-add
// throughput over the single-caller figure: batching queued commuting
// writers into one exclusive admission must buy at least 3x.
const commuteWinFloor = 3.0

// checkWriteWins enforces the write-path multipliers themselves, like
// checkReplicaWin does for replica reads: the pipelining and batching
// machinery cannot quietly degrade into "barely better than holding
// the object".
func checkWriteWins(results []BenchResult) error {
	byName := make(map[string]BenchResult, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	ratio := func(num, den string) (float64, error) {
		n, okN := byName[num]
		d, okD := byName[den]
		if !okN || !okD {
			return 0, fmt.Errorf("write win: missing scenario (%s=%v %s=%v)", num, okN, den, okD)
		}
		if d.OpsPerSec <= 0 {
			return 0, fmt.Errorf("write win: %s measured %.0f ops/sec", den, d.OpsPerSec)
		}
		return n.OpsPerSec / d.OpsPerSec, nil
	}
	nested, err := ratio("invoke.write.nested", "invoke.write.nested.hold")
	if err != nil {
		return err
	}
	if nested < nestedWinFloor {
		return fmt.Errorf("nested write win: %.2fx (pipelined %.0f vs held %.0f ops/sec) is below the %.1fx floor",
			nested, byName["invoke.write.nested"].OpsPerSec, byName["invoke.write.nested.hold"].OpsPerSec, nestedWinFloor)
	}
	fmt.Printf("nested write win: %.2fx over held exclusivity (floor %.1fx)\n", nested, nestedWinFloor)
	commute, err := ratio("invoke.write.commute8", "invoke.write.commute1")
	if err != nil {
		return err
	}
	if commute < commuteWinFloor {
		return fmt.Errorf("commute win: %.2fx (8 callers %.0f vs 1 caller %.0f ops/sec) is below the %.1fx floor",
			commute, byName["invoke.write.commute8"].OpsPerSec, byName["invoke.write.commute1"].OpsPerSec, commuteWinFloor)
	}
	fmt.Printf("commute write win: %.2fx over a single caller (floor %.1fx)\n", commute, commuteWinFloor)
	return nil
}

// compareBaseline fails on any op class whose throughput fell more
// than tolerance below the baseline's. New op classes (absent from the
// baseline) pass; op classes removed relative to the baseline fail, so
// a benchmark cannot silently disappear.
func compareBaseline(report BenchReport, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base BenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	current := make(map[string]BenchResult, len(report.Results))
	for _, r := range report.Results {
		current[r.Name] = r
	}
	var failures []string
	for _, b := range base.Results {
		r, ok := current[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but not measured", b.Name))
			continue
		}
		floor := b.OpsPerSec * (1 - tolerance)
		if r.OpsPerSec < floor {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f ops/sec is %.0f%% below baseline %.0f (floor %.0f)",
					b.Name, r.OpsPerSec, 100*(1-r.OpsPerSec/b.OpsPerSec), b.OpsPerSec, floor))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "regression: "+f)
		}
		return fmt.Errorf("%d benchmark regression(s) vs %s", len(failures), path)
	}
	fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", path, tolerance*100)
	return nil
}
