// Command edenbench runs the Eden reproduction's experiment suite
// (E1–E10 of DESIGN.md) and prints one table per experiment. These
// tables are the repository's synthetic evaluation: the source paper
// is a design paper with no measurements, so each experiment states
// the architecture's qualitative prediction and checks the
// implementation exhibits that shape.
//
// Usage:
//
//	edenbench             # full suite
//	edenbench -exp E6     # one experiment
//	edenbench -list       # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eden/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (E1..E10)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "run the micro-benchmarks and write BENCH_<rev>.json instead of the experiment suite")
	rev := flag.String("rev", "local", "revision label for the benchmark report filename")
	out := flag.String("o", "", "benchmark report path (default BENCH_<rev>.json)")
	baseline := flag.String("baseline", "", "compare the report against this baseline JSON and fail on regressions")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional throughput regression vs the baseline")
	runs := flag.Int("runs", 1, "repeat the micro-benchmark suite N times and report per-scenario medians")
	flag.Parse()

	if *jsonOut {
		if err := runBenchJSON(*rev, *out, *baseline, *tolerance, *runs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Name)
		}
		return
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		t, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
		fmt.Printf("  [%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run(e)
		if e.ID == "E6" {
			// The station and frame-size sweeps are E6's companion
			// tables.
			for _, run := range []func() (*experiments.Table, error){
				experiments.RunE6Stations, experiments.RunE6Sizes,
			} {
				t, err := run()
				if err != nil {
					fmt.Fprintf(os.Stderr, "E6 companion failed: %v\n", err)
					os.Exit(1)
				}
				t.Fprint(os.Stdout)
			}
		}
		return
	}
	for _, e := range experiments.All() {
		run(e)
		if e.ID == "E6" {
			for _, run := range []func() (*experiments.Table, error){
				experiments.RunE6Stations, experiments.RunE6Sizes,
			} {
				t, err := run()
				if err != nil {
					fmt.Fprintf(os.Stderr, "E6 companion failed: %v\n", err)
					os.Exit(1)
				}
				t.Fprint(os.Stdout)
				fmt.Println()
			}
		}
	}
}
