// Mailsystem: the distributed application the historical Eden project
// actually built first — an electronic mail system in which every
// mailbox is an Eden object.
//
// Each user's mailbox lives on that user's node machine (fast local
// reads), is named through a shared directory object, checkpoints
// after delivery (mail survives node failures), and moves with the
// user when they relocate to another office.
package main

import (
	"time"

	"encoding/binary"
	"fmt"
	"log"
	"strings"

	"eden"
)

// opts gives every invocation an explicit five-second budget, so no
// call can hang the walkthrough silently.
func opts() *eden.InvokeOptions { return &eden.InvokeOptions{Timeout: 5 * time.Second} }

// Mailbox representation: a data segment per message, numbered; the
// "meta" segment holds the next message number.
const mailboxType = "mailbox"

// deliver's payload: fromLen(2) from | subjLen(2) subj | body.
func encodeMail(from, subject, body string) []byte {
	buf := make([]byte, 0, 4+len(from)+len(subject)+len(body))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(from)))
	buf = append(buf, from...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(subject)))
	buf = append(buf, subject...)
	return append(buf, body...)
}

func decodeMail(b []byte) (from, subject, body string) {
	if len(b) < 2 {
		return
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n+2 {
		return
	}
	from, b = string(b[:n]), b[n:]
	m := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < m {
		return
	}
	subject, body = string(b[:m]), string(b[m:])
	return
}

// mailboxManager defines the mailbox type. Delivery and deletion are
// serialized by a limit-1 invocation class; reading is concurrent.
func mailboxManager() *eden.TypeManager {
	tm := eden.NewType(mailboxType)
	tm.Init = func(o *eden.Object) error {
		return o.Update(func(r *eden.Representation) error {
			r.SetData("meta", []byte{0, 0, 0, 0, 0, 0, 0, 0})
			return nil
		})
	}
	tm.Limit("deliver", 1)

	tm.Op(eden.Operation{
		Name:  "deliver",
		Class: "deliver",
		Handler: func(c *eden.Call) {
			var seq uint64
			err := c.Self().Update(func(r *eden.Representation) error {
				meta, _ := r.Data("meta")
				seq = binary.BigEndian.Uint64(meta) + 1
				binary.BigEndian.PutUint64(meta, seq)
				r.SetData("meta", meta)
				r.SetData(fmt.Sprintf("msg:%08d", seq), c.Data)
				return nil
			})
			if err != nil {
				c.Fail("deliver: %v", err)
				return
			}
			// Mail must survive a node failure: checkpoint on every
			// delivery.
			if err := c.Self().Checkpoint(); err != nil {
				c.Fail("deliver: checkpoint: %v", err)
				return
			}
			var out [8]byte
			binary.BigEndian.PutUint64(out[:], seq)
			c.Return(out[:])
		},
	})

	tm.Op(eden.Operation{
		Name:     "list",
		ReadOnly: true,
		Handler: func(c *eden.Call) {
			var lines []string
			c.Self().View(func(r *eden.Representation) {
				for _, seg := range r.Names() {
					if strings.HasPrefix(seg, "msg:") {
						b, _ := r.Data(seg)
						from, subject, _ := decodeMail(b)
						lines = append(lines, fmt.Sprintf("%s|%s|%s", strings.TrimPrefix(seg, "msg:"), from, subject))
					}
				}
			})
			c.Return([]byte(strings.Join(lines, "\n")))
		},
	})

	tm.Op(eden.Operation{
		Name:     "read",
		ReadOnly: true,
		Handler: func(c *eden.Call) {
			seg := "msg:" + string(c.Data)
			var found []byte
			c.Self().View(func(r *eden.Representation) {
				if b, err := r.Data(seg); err == nil {
					found = b
				}
			})
			if found == nil {
				c.Fail("no message %s", c.Data)
				return
			}
			c.Return(found)
		},
	})

	tm.Op(eden.Operation{
		Name:  "delete",
		Class: "deliver",
		Handler: func(c *eden.Call) {
			seg := "msg:" + string(c.Data)
			err := c.Self().Update(func(r *eden.Representation) error {
				if !r.Has(seg) {
					return fmt.Errorf("no message %s", c.Data)
				}
				r.Delete(seg)
				return nil
			})
			if err != nil {
				c.Fail("%v", err)
				return
			}
			_ = c.Self().Checkpoint()
		},
	})
	return tm
}

// sendMail resolves the recipient's mailbox through the registry and
// delivers — from any node, with no idea where the mailbox lives.
func sendMail(n *eden.Node, registry eden.Capability, to, from, subject, body string) error {
	box, err := n.LookupName(registry, to)
	if err != nil {
		return fmt.Errorf("no such user %q: %w", to, err)
	}
	_, err = n.Invoke(box, "deliver", encodeMail(from, subject, body), nil, opts())
	return err
}

func listMail(n *eden.Node, registry eden.Capability, user string) ([]string, error) {
	box, err := n.LookupName(registry, user)
	if err != nil {
		return nil, err
	}
	rep, err := n.Invoke(box, "list", nil, nil, opts())
	if err != nil {
		return nil, err
	}
	if len(rep.Data) == 0 {
		return nil, nil
	}
	return strings.Split(string(rep.Data), "\n"), nil
}

func main() {
	sys, err := eden.NewSystem(eden.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.RegisterType(mailboxManager()); err != nil {
		log.Fatal(err)
	}

	// Four node machines: three offices and a file server that acts as
	// the well-known home of the user registry and as a checksite.
	lazowska, _ := sys.AddNode("office-lazowska")
	levy, _ := sys.AddNode("office-levy")
	almes, _ := sys.AddNode("office-almes")
	server, _ := sys.AddNode("file-server")

	fmt.Println("== Eden mail system ==")

	// The registry: a directory object on the file server mapping user
	// names to mailbox capabilities.
	registry, err := server.NewDirectory()
	if err != nil {
		log.Fatal(err)
	}

	// Each user's mailbox is created on their own node, with the file
	// server as a replicated checksite, then registered by name.
	users := map[string]*eden.Node{"lazowska": lazowska, "levy": levy, "almes": almes}
	for name, node := range users {
		box, err := node.CreateObject(mailboxType)
		if err != nil {
			log.Fatal(err)
		}
		obj, _ := node.Object(box)
		if err := obj.SetChecksite(eden.RelReplicated, server.Num()); err != nil {
			log.Fatal(err)
		}
		if err := obj.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		if err := node.Bind(registry, name, box); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mailbox for %-9s on %s (checksite: %s)\n", name, node.Name(), server.Name())
	}

	// Mail flows between nodes with only names.
	must(sendMail(levy, registry, "lazowska", "levy", "432 microcode", "The GDP invocation path worries me."))
	must(sendMail(almes, registry, "lazowska", "almes", "Ethernet measurements", "Utilization saturates near 95% with long packets."))
	must(sendMail(lazowska, registry, "levy", "lazowska", "re: 432 microcode", "Caching should help; let's measure."))

	msgs, err := listMail(almes, registry, "lazowska")
	must(err)
	fmt.Println("\nlazowska's inbox (listed from almes's node):")
	for _, m := range msgs {
		parts := strings.SplitN(m, "|", 3)
		fmt.Printf("  #%s from %-9s %s\n", parts[0], parts[1], parts[2])
	}

	// Node failure: lazowska's office machine dies. The mailbox's
	// checksite (the file server) reincarnates it on demand — no mail
	// is lost, because deliver checkpoints.
	fmt.Println("\n-- office-lazowska loses power --")
	lazowska.Crash()
	msgs, err = listMail(levy, registry, "lazowska")
	must(err)
	fmt.Printf("inbox recovered from checksite, %d messages intact:\n", len(msgs))
	for _, m := range msgs {
		parts := strings.SplitN(m, "|", 3)
		fmt.Printf("  #%s from %-9s %s\n", parts[0], parts[1], parts[2])
	}

	// Relocation: levy moves offices; his mailbox moves with him. Old
	// capabilities keep working through the forwarding pointer.
	fmt.Println("\n-- levy relocates to almes's building --")
	levyBox, _ := server.LookupName(registry, "levy")
	obj, err := levy.Object(levyBox)
	must(err)
	must(<-obj.Move(almes.Num()))
	must(sendMail(server, registry, "levy", "postmaster", "welcome", "Your mailbox moved with you."))
	msgs, err = listMail(almes, registry, "levy")
	must(err)
	fmt.Printf("levy's mailbox now serves from %s with %d messages\n", almes.Name(), len(msgs))

	st := sys.NetworkStats()
	fmt.Printf("\nnetwork: %d frames, %d bytes\n== done ==\n", st.Frames, st.Bytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
