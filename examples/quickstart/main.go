// Quickstart: a three-node Eden system exercising the kernel's
// primitives end to end — type definition, object creation,
// location-independent invocation, capability restriction, checkpoint,
// crash and reincarnation, freeze and replication, and object
// mobility.
package main

import (
	"time"

	"encoding/binary"
	"fmt"
	"log"

	"eden"
)

// opts gives every invocation an explicit five-second budget, so no
// call can hang the walkthrough silently.
func opts() *eden.InvokeOptions { return &eden.InvokeOptions{Timeout: 5 * time.Second} }

// u64 round-trips counters through invocation payloads.
func u64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func fromU64(b []byte) uint64 {
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// counterType defines a persistent counter: one "write" invocation
// class with limit 1 (mutual exclusion), a read-only "get", and a
// guarded "reset" demanding a type-defined right.
func counterType() *eden.TypeManager {
	tm := eden.NewType("counter")
	tm.Init = func(o *eden.Object) error {
		return o.Update(func(r *eden.Representation) error {
			r.SetData("n", u64(0))
			return nil
		})
	}
	tm.Limit("write", 1)
	tm.Op(eden.Operation{
		Name:  "inc",
		Class: "write",
		Handler: func(c *eden.Call) {
			var out uint64
			_ = c.Self().Update(func(r *eden.Representation) error {
				b, _ := r.Data("n")
				out = fromU64(b) + 1
				r.SetData("n", u64(out))
				return nil
			})
			c.Return(u64(out))
		},
	})
	tm.Op(eden.Operation{
		Name:     "get",
		ReadOnly: true,
		Handler: func(c *eden.Call) {
			c.Self().View(func(r *eden.Representation) {
				b, _ := r.Data("n")
				c.Return(b)
			})
		},
	})
	tm.Op(eden.Operation{
		Name:   "reset",
		Class:  "write",
		Rights: eden.TypeRight(0),
		Handler: func(c *eden.Call) {
			_ = c.Self().Update(func(r *eden.Representation) error {
				r.SetData("n", u64(0))
				return nil
			})
		},
	})
	return tm
}

func main() {
	sys, err := eden.NewSystem(eden.SystemConfig{Telemetry: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Three office node machines on one (simulated) Ethernet.
	alpha, _ := sys.AddNode("alpha")
	beta, _ := sys.AddNode("beta")
	gamma, _ := sys.AddNode("gamma")
	fmt.Println("== Eden quickstart: 3 nodes on one network ==")

	if err := sys.RegisterType(counterType()); err != nil {
		log.Fatal(err)
	}

	// Create an object on alpha; the capability is location-free.
	cap, err := alpha.CreateObject("counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created counter %v on %s\n", cap.ID(), alpha.Name())

	// Location-independent invocation: beta and gamma don't know (or
	// care) where the counter lives.
	for _, n := range []*eden.Node{alpha, beta, gamma} {
		rep, err := n.Invoke(cap, "inc", nil, nil, opts())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s invoked inc -> %d\n", n.Name(), fromU64(rep.Data))
	}

	// Capability restriction: a read-only capability cannot reset.
	readOnly := cap.Restrict(eden.RightInvoke)
	if _, err := beta.Invoke(readOnly, "reset", nil, nil, opts()); err != nil {
		fmt.Printf("reset with read-only capability correctly denied: %v\n", err)
	}

	// Checkpoint, crash, reincarnate: the object survives with its
	// checkpointed state; post-checkpoint work is lost by design.
	obj, _ := alpha.Object(cap)
	if err := obj.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	if _, err := alpha.Invoke(cap, "inc", nil, nil, opts()); err != nil { // will be lost
		log.Fatal(err)
	}
	obj.Crash()
	rep, err := gamma.Invoke(cap, "get", nil, nil, opts()) // reincarnates
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash+reincarnation the counter reads %d (checkpointed value)\n", fromU64(rep.Data))

	// Freeze and replicate: reads are then served from local caches.
	obj, _ = alpha.Object(cap)
	if err := obj.Freeze(); err != nil {
		log.Fatal(err)
	}
	if err := obj.Replicate(beta.Num(), gamma.Num()); err != nil {
		log.Fatal(err)
	}
	rep, err = gamma.Invoke(cap, "get", nil, nil, &eden.InvokeOptions{Timeout: 5 * time.Second, AllowReplica: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gamma read %d from its local frozen replica (no network hop)\n", fromU64(rep.Data))

	// Mobility: a second (mutable) counter moves from alpha to beta;
	// invocations keep working through the forwarding pointer.
	cap2, _ := alpha.CreateObject("counter")
	if _, err := gamma.Invoke(cap2, "inc", nil, nil, opts()); err != nil {
		log.Fatal(err)
	}
	obj2, _ := alpha.Object(cap2)
	if err := <-obj2.Move(beta.Num()); err != nil {
		log.Fatal(err)
	}
	rep, err = gamma.Invoke(cap2, "inc", nil, nil, opts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second counter moved to %s; gamma's invocation followed it -> %d\n",
		beta.Name(), fromU64(rep.Data))

	st := sys.NetworkStats()
	fmt.Printf("network carried %d frames, %d bytes (dropped %d)\n", st.Frames, st.Bytes, st.Dropped)

	// Telemetry: each node kept metrics and invocation traces while the
	// walkthrough ran. Summarize gamma's view — it invoked objects on
	// every other node.
	snap := gamma.Telemetry().Snapshot()
	fmt.Printf("gamma telemetry: %d local / %d remote invocations",
		snap.Counters["kernel.invoke.local"], snap.Counters["kernel.invoke.remote"])
	if h, ok := snap.Histograms["kernel.invoke.remote.latency"]; ok {
		fmt.Printf(", remote p95 %v", h.Quantile(0.95))
	}
	fmt.Println()
	fmt.Println("== done ==")
}
