// Printroom: a complete Eden subsystem combining three of the paper's
// ideas — a gateway object fronting a foreign device ("special-purpose
// servers ... interfaced to the system through node machines"), a
// placement policy object distributing the subsystem's worker objects
// across nodes (§4.3), and spooler objects whose caretaker behaviors
// drain queues in the background.
//
// Users on any node drop print jobs into a spooler by name; spoolers
// queue them in their representations and a behavior feeds the one
// shared line-printer gateway, which serializes access to the physical
// device with a limit-1 invocation class.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"eden"
	"eden/internal/gateway"
)

// opts gives every invocation an explicit five-second budget, so no
// call can hang the walkthrough silently.
func opts() *eden.InvokeOptions { return &eden.InvokeOptions{Timeout: 5 * time.Second} }

const spoolerType = "print.spooler"

// spoolerManager defines the spooler: "submit" enqueues a job into the
// representation; a behavior started at init/reincarnation drains jobs
// to the printer gateway (whose capability lives in the spooler's
// capability segment).
func spoolerManager() *eden.TypeManager {
	tm := eden.NewType(spoolerType)
	tm.Limit("queue", 1)

	startDrain := func(o *eden.Object) error {
		o.SpawnBehavior(func(stop <-chan struct{}) {
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					// Pop one job and its printer capability.
					var job []byte
					var jobSeg string
					var printer eden.Capability
					o.View(func(r *eden.Representation) {
						for _, seg := range r.Names() {
							if strings.HasPrefix(seg, "job:") {
								job, _ = r.Data(seg)
								jobSeg = seg
								break
							}
						}
						if caps, err := r.Caps("printer"); err == nil && len(caps) == 1 {
							printer = caps[0]
						}
					})
					if jobSeg == "" || printer.IsNull() {
						continue
					}
					// Print via the gateway (location-transparent),
					// then dequeue only on success.
					if _, err := o.Invoke(printer, "print", job, nil, opts()); err != nil {
						continue // device busy/offline: retry next tick
					}
					_ = o.Update(func(r *eden.Representation) error {
						r.Delete(jobSeg)
						return nil
					})
				}
			}
		})
		return nil
	}
	tm.Init = func(o *eden.Object) error {
		if err := o.Update(func(r *eden.Representation) error {
			r.SetData("next", []byte{0, 0, 0, 0, 0, 0, 0, 0})
			return nil
		}); err != nil {
			return err
		}
		return startDrain(o)
	}
	tm.Reincarnate = startDrain

	tm.Op(eden.Operation{
		Name:  "attach-printer",
		Class: "queue",
		Handler: func(c *eden.Call) {
			if len(c.Caps) != 1 {
				c.Fail("attach-printer: one capability required")
				return
			}
			_ = c.Self().Update(func(r *eden.Representation) error {
				r.SetCaps("printer", eden.CapabilityList{c.Caps[0]})
				return nil
			})
		},
	})
	tm.Op(eden.Operation{
		Name:  "submit",
		Class: "queue",
		Handler: func(c *eden.Call) {
			err := c.Self().Update(func(r *eden.Representation) error {
				next, _ := r.Data("next")
				seq := uint64(next[0])<<56 | uint64(next[1])<<48 | uint64(next[2])<<40 | uint64(next[3])<<32 |
					uint64(next[4])<<24 | uint64(next[5])<<16 | uint64(next[6])<<8 | uint64(next[7])
				seq++
				for i := 0; i < 8; i++ {
					next[7-i] = byte(seq >> (8 * i))
				}
				r.SetData("next", next)
				r.SetData(fmt.Sprintf("job:%08d", seq), c.Data)
				return nil
			})
			if err != nil {
				c.Fail("submit: %v", err)
			}
		},
	})
	tm.Op(eden.Operation{
		Name:     "pending",
		ReadOnly: true,
		Handler: func(c *eden.Call) {
			count := 0
			c.Self().View(func(r *eden.Representation) {
				for _, seg := range r.Names() {
					if strings.HasPrefix(seg, "job:") {
						count++
					}
				}
			})
			c.Return([]byte{byte(count)})
		},
	})
	return tm
}

func main() {
	sys, err := eden.NewSystem(eden.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Four offices and the machine room hosting the printer.
	var offices []*eden.Node
	for _, name := range []string{"office-1", "office-2", "office-3", "office-4"} {
		n, err := sys.AddNode(name)
		if err != nil {
			log.Fatal(err)
		}
		offices = append(offices, n)
	}
	machineRoom, _ := sys.AddNode("machine-room")

	// The foreign device: a line printer behind a gateway object,
	// hosted in the machine room. The sink stands for the device
	// driver on that node.
	var printMu sync.Mutex
	var printed []string
	if err := sys.RegisterGateway(gateway.LinePrinterSpec("gateway.lineprinter", func(line string) {
		printMu.Lock()
		printed = append(printed, line)
		printMu.Unlock()
	})); err != nil {
		log.Fatal(err)
	}
	if err := sys.RegisterType(spoolerManager()); err != nil {
		log.Fatal(err)
	}
	printer, err := machineRoom.CreateObject("gateway.lineprinter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Eden print room ==")
	fmt.Printf("printer gateway on %s\n", machineRoom.Name())

	// The subsystem's placement policy lives in the machine room and
	// spreads spoolers across the offices.
	pol, err := machineRoom.NewPlacementPolicy(offices[0].Num(), offices[1].Num(), offices[2].Num(), offices[3].Num())
	if err != nil {
		log.Fatal(err)
	}
	registry, _ := machineRoom.NewDirectory()

	// Two spoolers, placed by policy, registered by name.
	for _, name := range []string{"spool-a", "spool-b"} {
		sp, err := machineRoom.CreateObject(spoolerType)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := machineRoom.Invoke(sp, "attach-printer", nil, eden.CapabilityList{printer}, opts()); err != nil {
			log.Fatal(err)
		}
		dest, err := machineRoom.PlaceAndMove(pol, sp)
		if err != nil {
			log.Fatal(err)
		}
		if err := machineRoom.Bind(registry, name, sp); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("spooler %s placed on node %d by the policy object\n", name, dest)
	}

	// Every office submits jobs by name, oblivious to placement.
	var wg sync.WaitGroup
	for i, office := range offices {
		i, office := i, office
		wg.Add(1)
		go func() {
			defer wg.Done()
			spool := "spool-a"
			if i%2 == 1 {
				spool = "spool-b"
			}
			sp, err := office.LookupName(registry, spool)
			if err != nil {
				log.Fatal(err)
			}
			for j := 0; j < 3; j++ {
				line := fmt.Sprintf("job from %s #%d", office.Name(), j+1)
				if _, err := office.Invoke(sp, "submit", []byte(line), nil, opts()); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Println("12 jobs submitted from 4 offices into 2 spoolers")

	// Wait for the caretaker behaviors to drain everything through the
	// single serialized printer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		printMu.Lock()
		done := len(printed) == 12
		printMu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	printMu.Lock()
	fmt.Printf("printer produced %d lines; first three:\n", len(printed))
	for _, l := range printed[:3] {
		fmt.Println("  " + l)
	}
	printMu.Unlock()

	rep, _ := machineRoom.Invoke(printer, "gateway-stats", nil, nil, opts())
	fmt.Printf("gateway served %d foreign requests\n== done ==\n", gateway.Requests(rep.Data))
}
