// Filestore: the Eden File System (§5 of the paper) in action —
// transactions over immutable versions, two concurrency-control
// disciplines, multi-site replication, and reading through a site
// failure.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"eden"
	"eden/internal/efs"
)

func main() {
	sys, err := eden.NewSystem(eden.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	a, _ := sys.AddNode("site-a")
	b, _ := sys.AddNode("site-b")
	c, _ := sys.AddNode("site-c")
	fmt.Println("== Eden File System ==")

	// --- immutable versions ---
	fs := a.EFS(efs.Optimistic)
	design, err := fs.CreateFile()
	must(err)
	for i, draft := range []string{
		"Eden design note, draft 1",
		"Eden design note, draft 2 (objects are active)",
		"Eden design note, draft 3 (checkpoint/reincarnate)",
	} {
		tx := fs.Begin()
		must(tx.Write(design, uint64(i), []byte(draft)))
		must(tx.Commit())
	}
	latest, count, err := fs.History(design)
	must(err)
	fmt.Printf("file has %d immutable versions (latest v%d):\n", count, latest)
	for v := uint64(1); v <= latest; v++ {
		data, _, err := fs.ReadVersion(design, v)
		must(err)
		fmt.Printf("  v%d: %s\n", v, data)
	}

	// --- transactions: atomic multi-file commit across sites ---
	ledgerA, err := a.EFS(efs.Optimistic).CreateFile()
	must(err)
	ledgerB, err := b.EFS(efs.Optimistic).CreateFile()
	must(err)
	tx := fs.Begin()
	must(tx.Write(ledgerA, 0, []byte("debit 100")))
	must(tx.Write(ledgerB, 0, []byte("credit 100")))
	must(tx.Commit())
	fmt.Println("\natomically committed one transaction across files on site-a and site-b")

	// --- concurrency control: optimistic vs locking ---
	fmt.Println("\nconcurrency control shoot-out (8 writers, one hot file):")
	for _, mode := range []efs.CCMode{efs.Optimistic, efs.Locking} {
		client := a.EFS(mode)
		hot, err := client.CreateFile()
		must(err)
		var commits, conflicts atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					for { // retry until committed
						tx := client.Begin()
						_, ver, err := tx.Read(hot)
						if err != nil {
							log.Fatal(err)
						}
						if err := tx.Write(hot, ver, []byte(fmt.Sprintf("update at v%d", ver))); err != nil {
							tx.Abort()
							conflicts.Add(1)
							continue
						}
						if err := tx.Commit(); err != nil {
							if !errors.Is(err, efs.ErrConflict) {
								log.Fatal(err)
							}
							conflicts.Add(1)
							continue
						}
						commits.Add(1)
						break
					}
				}
			}()
		}
		wg.Wait()
		_, finalVer, _ := client.Read(hot)
		fmt.Printf("  %-10s  40 intended commits -> %d committed (v%d), %d conflict retries\n",
			mode, commits.Load(), finalVer, conflicts.Load())
	}

	// --- replication: committed versions pushed to mirrors ---
	fmt.Println("\nreplication:")
	primary, mirrors, err := fs.CreateReplicated(b.Num(), c.Num())
	must(err)
	tx = fs.Begin()
	must(tx.Write(primary, 0, []byte("replicated across three sites")))
	must(tx.Commit())
	fmt.Printf("  committed v1 on site-a; %d mirrors received it\n", len(mirrors))

	// Site-a (the primary's node) fails; the data remains readable
	// from either mirror, because versions are immutable.
	a.Crash()
	fmt.Println("  -- site-a fails --")
	reader := c.EFS(efs.Optimistic)
	data, ver, err := reader.ReadAny(append(mirrors.Clone(), primary)...)
	must(err)
	fmt.Printf("  read after failure: v%d %q (served by a surviving mirror)\n", ver, data)

	// And after site-a restarts, the primary serves again.
	must(a.Restart())
	time.Sleep(10 * time.Millisecond)
	data, ver, err = reader.ReadAny(primary)
	must(err)
	fmt.Printf("  primary back online: v%d %q\n", ver, data)
	fmt.Println("== done ==")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
