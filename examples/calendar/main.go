// Calendar: a shared appointment calendar — the other application the
// historical Eden project motivated its "integrated" side with.
//
// One calendar object per working group. Booking is an invocation
// class with limit 1, so concurrent booking attempts from different
// nodes serialize inside the object and double-booking is structurally
// impossible. A caretaker behavior expires old entries in the
// background, demonstrating the paper's behavior mechanism.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eden"
)

// opts gives every invocation an explicit five-second budget, so no
// call can hang the walkthrough silently.
func opts() *eden.InvokeOptions { return &eden.InvokeOptions{Timeout: 5 * time.Second} }

const calendarType = "calendar"

// Slots are hours 0..23 of a single day; a booking names the slot and
// the holder. Request: slot(2) | holder. Representation: one data
// segment "slot:<n>" per booked slot.
func slotSeg(slot uint16) string { return fmt.Sprintf("slot:%02d", slot) }

func calendarManager(expired *atomic.Int64) *eden.TypeManager {
	tm := eden.NewType(calendarType)
	tm.Limit("book", 1)

	startCaretaker := func(o *eden.Object) error {
		// A behavior sweeps bookings marked cancelled, modeling the
		// paper's "object caretaking" (tree balancing, internal GC).
		o.SpawnBehavior(func(stop <-chan struct{}) {
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = o.Update(func(r *eden.Representation) error {
						for _, seg := range r.Names() {
							if strings.HasPrefix(seg, "slot:") {
								b, _ := r.Data(seg)
								if strings.HasPrefix(string(b), "!") { // tombstone
									r.Delete(seg)
									if expired != nil {
										expired.Add(1)
									}
								}
							}
						}
						return nil
					})
				}
			}
		})
		return nil
	}
	tm.Init = startCaretaker
	tm.Reincarnate = startCaretaker

	tm.Op(eden.Operation{
		Name:  "book",
		Class: "book",
		Handler: func(c *eden.Call) {
			if len(c.Data) < 3 {
				c.Fail("book: need slot and holder")
				return
			}
			slot := binary.BigEndian.Uint16(c.Data)
			holder := string(c.Data[2:])
			if slot > 23 {
				c.Fail("book: slot %d out of range", slot)
				return
			}
			seg := slotSeg(slot)
			err := c.Self().Update(func(r *eden.Representation) error {
				if b, err := r.Data(seg); err == nil && !strings.HasPrefix(string(b), "!") {
					return fmt.Errorf("slot %02d:00 already booked by %s", slot, b)
				}
				r.SetData(seg, []byte(holder))
				return nil
			})
			if err != nil {
				c.Fail("%v", err)
				return
			}
			_ = c.Self().Checkpoint()
		},
	})

	tm.Op(eden.Operation{
		Name:  "cancel",
		Class: "book",
		Handler: func(c *eden.Call) {
			if len(c.Data) < 2 {
				c.Fail("cancel: need slot")
				return
			}
			slot := binary.BigEndian.Uint16(c.Data)
			seg := slotSeg(slot)
			err := c.Self().Update(func(r *eden.Representation) error {
				b, err := r.Data(seg)
				if err != nil || strings.HasPrefix(string(b), "!") {
					return fmt.Errorf("slot %02d:00 is not booked", slot)
				}
				// Tombstone; the caretaker behavior collects it.
				r.SetData(seg, append([]byte("!"), b...))
				return nil
			})
			if err != nil {
				c.Fail("%v", err)
			}
		},
	})

	tm.Op(eden.Operation{
		Name:     "agenda",
		ReadOnly: true,
		Handler: func(c *eden.Call) {
			var lines []string
			c.Self().View(func(r *eden.Representation) {
				for _, seg := range r.Names() {
					if strings.HasPrefix(seg, "slot:") {
						b, _ := r.Data(seg)
						if !strings.HasPrefix(string(b), "!") {
							lines = append(lines, strings.TrimPrefix(seg, "slot:")+":00 "+string(b))
						}
					}
				}
			})
			c.Return([]byte(strings.Join(lines, "\n")))
		},
	})
	return tm
}

func book(n *eden.Node, cal eden.Capability, slot uint16, holder string) error {
	req := binary.BigEndian.AppendUint16(nil, slot)
	req = append(req, holder...)
	_, err := n.Invoke(cal, "book", req, nil, &eden.InvokeOptions{Timeout: 5 * time.Second})
	return err
}

func main() {
	sys, err := eden.NewSystem(eden.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	var expired atomic.Int64
	if err := sys.RegisterType(calendarManager(&expired)); err != nil {
		log.Fatal(err)
	}

	// The kernel working group: one node per member, the calendar on
	// the group lead's node.
	var members []*eden.Node
	for _, name := range []string{"lead", "member-a", "member-b", "member-c"} {
		n, err := sys.AddNode(name)
		if err != nil {
			log.Fatal(err)
		}
		members = append(members, n)
	}
	cal, err := members[0].CreateObject(calendarType)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Eden shared calendar ==")

	// Everyone races for the 10:00 design review slot from their own
	// node. The book class's limit of 1 serializes them inside the
	// object: exactly one wins.
	var wg sync.WaitGroup
	var winners, losers atomic.Int64
	for i, n := range members {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := book(n, cal, 10, fmt.Sprintf("user-%d", i))
			switch {
			case err == nil:
				winners.Add(1)
			case errors.Is(err, eden.ErrInvocationFailed):
				losers.Add(1)
			default:
				log.Printf("unexpected: %v", err)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("4 concurrent bookings for 10:00 -> %d won, %d correctly refused\n",
		winners.Load(), losers.Load())

	// Fill in a day.
	must(book(members[1], cal, 9, "standup"))
	must(book(members[2], cal, 13, "432-bringup"))
	must(book(members[3], cal, 16, "reading-group"))

	rep, err := members[2].Invoke(cal, "agenda", nil, nil, opts())
	must(err)
	fmt.Println("\nagenda (read from member-b's node):")
	for _, line := range strings.Split(string(rep.Data), "\n") {
		fmt.Println("  " + line)
	}

	// Cancel and let the caretaker behavior collect the tombstone.
	req := binary.BigEndian.AppendUint16(nil, 13)
	_, err = members[0].Invoke(cal, "cancel", req, nil, opts())
	must(err)
	deadline := time.Now().Add(2 * time.Second)
	for expired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("\ncancelled 13:00; caretaker behavior collected %d tombstone(s)\n", expired.Load())

	// The 13:00 slot is bookable again.
	must(book(members[3], cal, 13, "impromptu-demo"))
	rep, _ = members[0].Invoke(cal, "agenda", nil, nil, opts())
	fmt.Println("\nfinal agenda:")
	for _, line := range strings.Split(string(rep.Data), "\n") {
		fmt.Println("  " + line)
	}
	fmt.Println("== done ==")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
