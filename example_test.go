package eden_test

import (
	"fmt"
	"log"

	"eden"
)

// Example assembles a two-node system, defines a type, and invokes an
// object location-transparently from the node that does not host it.
func Example() {
	sys, err := eden.NewSystem(eden.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	home, _ := sys.AddNode("home")
	away, _ := sys.AddNode("away")

	greeter := eden.NewType("greeter")
	greeter.Op(eden.Operation{
		Name:     "greet",
		ReadOnly: true,
		Handler: func(c *eden.Call) {
			c.Return([]byte("hello, " + string(c.Data)))
		},
	})
	if err := sys.RegisterType(greeter); err != nil {
		log.Fatal(err)
	}

	cap, _ := home.CreateObject("greeter")
	rep, err := away.Invoke(cap, "greet", []byte("eden"), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(rep.Data))
	// Output: hello, eden
}

// ExampleObject_Checkpoint shows the active/passive lifecycle: state
// checkpointed before a crash survives; state after it does not.
func ExampleObject_Checkpoint() {
	sys, _ := eden.NewSystem(eden.SystemConfig{})
	defer sys.Close()
	node, _ := sys.AddNode("solo")

	register := eden.NewType("register")
	register.Op(eden.Operation{Name: "set", Handler: func(c *eden.Call) {
		_ = c.Self().Update(func(r *eden.Representation) error {
			r.SetData("value", c.Data)
			return nil
		})
	}})
	register.Op(eden.Operation{Name: "get", ReadOnly: true, Handler: func(c *eden.Call) {
		c.Self().View(func(r *eden.Representation) {
			v, _ := r.Data("value")
			c.Return(v)
		})
	}})
	_ = sys.RegisterType(register)

	cap, _ := node.CreateObject("register")
	_, _ = node.Invoke(cap, "set", []byte("durable"), nil, nil)
	obj, _ := node.Object(cap)
	_ = obj.Checkpoint()
	_, _ = node.Invoke(cap, "set", []byte("volatile"), nil, nil)

	obj.Crash() // destroys active state; next invocation reincarnates

	rep, _ := node.Invoke(cap, "get", nil, nil, nil)
	fmt.Println(string(rep.Data))
	// Output: durable
}

// ExampleCapability_Restrict shows rights narrowing: a capability can
// only ever lose rights, never gain them.
func ExampleCapability_Restrict() {
	sys, _ := eden.NewSystem(eden.SystemConfig{})
	defer sys.Close()
	node, _ := sys.AddNode("solo")

	vault := eden.NewType("vault")
	vault.Op(eden.Operation{
		Name:   "open",
		Rights: eden.TypeRight(0),
		Handler: func(c *eden.Call) {
			c.Return([]byte("opened"))
		},
	})
	_ = sys.RegisterType(vault)

	full, _ := node.CreateObject("vault")
	weak := full.Restrict(eden.RightInvoke) // drops TypeRight(0)

	if _, err := node.Invoke(weak, "open", nil, nil, nil); err != nil {
		fmt.Println("restricted capability refused")
	}
	if rep, err := node.Invoke(full, "open", nil, nil, nil); err == nil {
		fmt.Println(string(rep.Data))
	}
	// Output:
	// restricted capability refused
	// opened
}
