package eden

// In-process crash loops: the whitebox complement to the blackbox
// harness in internal/chaos. The node's long-term store is a
// fault-injecting wrapper (internal/faultstore) plugged in through
// NodeConfig.Store, the "process" dies via Node.Crash, and the whole
// loop runs in one address space — so the race detector watches every
// cycle, which the subprocess harness cannot offer.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eden/internal/faultstore"
	"eden/internal/kernel"
	"eden/internal/store"
)

// durableCounterType is a counter whose "incdur" operation makes the
// durability promise the crash loop audits: increment, checkpoint, and
// only then reply value(8)|version(8). An acknowledged incdur must
// survive any crash. "stat" is the post-restart observation.
func durableCounterType() *TypeManager {
	tm := NewType("chaos.durable")
	tm.Init = func(o *Object) error {
		return o.Update(func(r *Representation) error {
			r.SetData("n", make([]byte, 8))
			return nil
		})
	}
	tm.Limit("write", 1)
	tm.Op(Operation{
		Name:  "incdur",
		Class: "write",
		Handler: func(c *Call) {
			var out [8]byte
			err := c.Self().Update(func(r *Representation) error {
				b, _ := r.Data("n")
				binary.BigEndian.PutUint64(out[:], binary.BigEndian.Uint64(b)+1)
				r.SetData("n", out[:])
				return nil
			})
			if err == nil {
				err = c.Self().Checkpoint()
			}
			if err != nil {
				c.Fail("incdur: %v", err)
				return
			}
			var ver [8]byte
			binary.BigEndian.PutUint64(ver[:], c.Self().Version())
			c.Return(append(out[:], ver[:]...))
		},
	})
	tm.Op(Operation{
		Name:     "stat",
		ReadOnly: true,
		Handler: func(c *Call) {
			var b [16]byte
			c.Self().View(func(r *Representation) {
				n, _ := r.Data("n")
				copy(b[:8], n)
			})
			binary.BigEndian.PutUint64(b[8:], c.Self().Version())
			c.Return(b[:])
		},
	})
	return tm
}

// ackFloor tracks the highest acknowledged value/version — the floor
// every post-restart observation must meet.
type ackFloor struct {
	mu              sync.Mutex
	value, version  uint64
	observedVersion uint64
	acks            uint64
}

func (f *ackFloor) ack(value, version uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.acks++
	if value > f.value {
		f.value = value
	}
	if version > f.version {
		f.version = version
	}
}

func (f *ackFloor) observe(value, version uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if value < f.value {
		return fmt.Errorf("lost acknowledged writes: observed value %d < acked floor %d", value, f.value)
	}
	if version < f.version {
		return fmt.Errorf("lost acknowledged checkpoint: observed version %d < acked floor %d", version, f.version)
	}
	if version < f.observedVersion {
		return fmt.Errorf("version ran backwards across restart: %d after %d", version, f.observedVersion)
	}
	f.observedVersion = version
	return nil
}

// allowedCrashLoopErr reports whether an invocation error is legitimate
// while the serving node is crashing, down, or served by a store that
// injects failures. A failed incdur is fine — it just raises no floor.
func allowedCrashLoopErr(err error) bool {
	return errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrCrashed) ||
		errors.Is(err, ErrNoSuchObject) ||
		errors.Is(err, ErrInvocationFailed) ||
		errors.Is(err, kernel.ErrClosed)
}

// TestCrashLoopInProcess crash-loops a node whose store injects failed
// and delayed I/O — faults the checkpoint contract must tolerate by
// failing invocations cleanly, never by losing acknowledged state.
// Traffic runs concurrently throughout, so under -race this also
// audits the kill/recover paths for data races.
func TestCrashLoopInProcess(t *testing.T) {
	seed := int64(20260808)
	if s := os.Getenv("EDEN_CHAOS_SEED"); s != "" {
		fmt.Sscanf(s, "%d", &seed)
	}
	rng := rand.New(rand.NewSource(seed))
	fs := faultstore.Wrap(store.NewMemory(), faultstore.Config{
		Seed:      seed,
		FailProb:  0.05,
		DelayProb: 0.05,
		MaxDelay:  2 * time.Millisecond,
	})
	sys, err := NewSystem(SystemConfig{
		DefaultTimeout: 2 * time.Second,
		LocateTimeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	faulty, err := sys.AddNodeWithConfig("faulty", NodeConfig{Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddNode("client")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterType(durableCounterType()); err != nil {
		t.Fatal(err)
	}
	cap, err := faulty.CreateObject("chaos.durable")
	if err != nil {
		t.Fatal(err)
	}

	floor := &ackFloor{}
	// Baseline durable write (retried: the schedule may fail it).
	deadline := time.Now().Add(10 * time.Second)
	for {
		rep, err := client.Invoke(cap, "incdur", nil, nil, nil)
		if err == nil {
			floor.ack(binary.BigEndian.Uint64(rep.Data[:8]), binary.BigEndian.Uint64(rep.Data[8:]))
			break
		}
		if !allowedCrashLoopErr(err) || time.Now().After(deadline) {
			t.Fatalf("baseline incdur: %v", err)
		}
	}

	stop := make(chan struct{})
	var undefined atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep, err := client.Invoke(cap, "incdur", nil, nil, &InvokeOptions{Timeout: 500 * time.Millisecond})
				if err != nil {
					if !allowedCrashLoopErr(err) {
						undefined.CompareAndSwap(nil, err)
					}
					continue
				}
				floor.ack(binary.BigEndian.Uint64(rep.Data[:8]), binary.BigEndian.Uint64(rep.Data[8:]))
			}
		}()
	}

	cycles := 4
	if chaosLong() {
		cycles = 25
	}
	for cycle := 1; cycle <= cycles; cycle++ {
		time.Sleep(time.Duration(20+rng.Intn(50)) * time.Millisecond)
		faulty.Crash()
		if err := faulty.Restart(); err != nil {
			t.Fatalf("cycle %d: restart: %v", cycle, err)
		}
		// Post-restart observation, retried while reincarnation (itself
		// subject to injected store faults) comes through.
		obsDeadline := time.Now().Add(10 * time.Second)
		for {
			rep, err := client.Invoke(cap, "stat", nil, nil, &InvokeOptions{Timeout: time.Second})
			if err == nil {
				v := binary.BigEndian.Uint64(rep.Data[:8])
				ver := binary.BigEndian.Uint64(rep.Data[8:])
				if oerr := floor.observe(v, ver); oerr != nil {
					t.Fatalf("cycle %d (seed %d): %v", cycle, seed, oerr)
				}
				break
			}
			if !allowedCrashLoopErr(err) || time.Now().After(obsDeadline) {
				t.Fatalf("cycle %d (seed %d): object unrecoverable: %v", cycle, seed, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	close(stop)
	wg.Wait()
	if e := undefined.Load(); e != nil {
		t.Fatalf("traffic saw an undefined error (seed %d): %v", seed, e)
	}
	c := fs.Counters()
	if fs.Ops() == 0 {
		t.Fatal("fault schedule never consulted: the injected store is not wired in")
	}
	floor.mu.Lock()
	t.Logf("seed %d: survived %d crash cycles, %d acked writes (floor value=%d version=%d); injected faults: fail=%d delay=%d over %d store ops",
		seed, cycles, floor.acks, floor.value, floor.version, c.Fail, c.Delay, fs.Ops())
	floor.mu.Unlock()
}

// TestCrashSyncLieInProcess is the in-process negative control: a store
// that acknowledges checkpoints before they are durable must lose them
// when the node power-fails (Node.Crash drops the volatile overlay),
// and the floor checks must catch the loss. It also pins the
// System-level contract that Crash loses unsynced state.
func TestCrashSyncLieInProcess(t *testing.T) {
	fs := faultstore.Wrap(store.NewMemory(), faultstore.Config{Seed: 4242, SyncLie: true})
	sys, err := NewSystem(SystemConfig{
		DefaultTimeout: 2 * time.Second,
		LocateTimeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	faulty, err := sys.AddNodeWithConfig("faulty", NodeConfig{Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddNode("client")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterType(durableCounterType()); err != nil {
		t.Fatal(err)
	}
	cap, err := faulty.CreateObject("chaos.durable")
	if err != nil {
		t.Fatal(err)
	}

	floor := &ackFloor{}
	for i := uint64(1); i <= 3; i++ {
		rep, err := client.Invoke(cap, "incdur", nil, nil, nil)
		if err != nil {
			t.Fatalf("incdur %d: %v", i, err)
		}
		floor.ack(binary.BigEndian.Uint64(rep.Data[:8]), binary.BigEndian.Uint64(rep.Data[8:]))
	}
	if fs.UnsyncedLen() == 0 {
		t.Fatal("sync-lie store has nothing unsynced after three acknowledged checkpoints")
	}

	faulty.Crash() // the overlay dies with the power
	if c := fs.Counters(); c.Dropped == 0 {
		t.Fatal("Crash did not drop the unsynced overlay")
	}
	if err := faulty.Restart(); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged write was a lie: recovery must either find no
	// object at all or a value below the acked floor. Finding the data
	// intact would mean the injection (or Crash) stopped working.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, err := client.Invoke(cap, "stat", nil, nil, &InvokeOptions{Timeout: time.Second})
		if err == nil {
			v := binary.BigEndian.Uint64(rep.Data[:8])
			if oerr := floor.observe(v, binary.BigEndian.Uint64(rep.Data[8:])); oerr == nil {
				t.Fatalf("acked writes survived a sync-lie crash (value %d): fault injection is not working", v)
			}
			t.Logf("loss detected: observed value %d below acked floor %d", v, 3)
			return
		}
		if errors.Is(err, ErrNoSuchObject) {
			t.Logf("loss detected: object unrecoverable after sync-lie crash (%v)", err)
			return
		}
		if !allowedCrashLoopErr(err) || time.Now().After(deadline) {
			t.Fatalf("undefined post-crash error: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
